#include <gtest/gtest.h>

#include "hypervisor/checkpoint.hpp"
#include "hypervisor/host.hpp"

namespace vmig::hv {
namespace {

using core::MigrationConfig;
using core::MigrationMessage;
using sim::Simulator;
using sim::Task;
using storage::Geometry;
using namespace vmig::sim::literals;

TEST(HostTest, ConstructionAndDisk) {
  Simulator sim;
  Host h{sim, "alpha", Geometry::from_mib(64)};
  EXPECT_EQ(h.name(), "alpha");
  EXPECT_EQ(h.disk().geometry().total_bytes(), 64ull * 1024 * 1024);
  EXPECT_TRUE(h.domains().empty());
}

TEST(HostTest, AttachDetachDomain) {
  Simulator sim;
  Host h{sim, "alpha", Geometry::from_mib(64)};
  vm::Domain d{sim, 3, "vm", 16};
  h.attach_domain(d);
  EXPECT_TRUE(h.hosts_domain(d));
  EXPECT_TRUE(d.frontend().connected());
  EXPECT_EQ(h.backend().served_domain(), 3u);
  h.detach_domain(d);
  EXPECT_FALSE(h.hosts_domain(d));
  EXPECT_FALSE(d.frontend().connected());
}

TEST(HostTest, PerDomainVbdsShareThePhysicalDisk) {
  Simulator sim;
  Host h{sim, "h", Geometry::from_mib(32)};
  vm::Domain d1{sim, 1, "d1", 4};
  vm::Domain d2{sim, 2, "d2", 4};
  h.attach_domain(d1);
  h.attach_domain(d2);
  auto& vbd1 = h.vbd_for(1);
  auto& vbd2 = h.vbd_for(2);
  EXPECT_NE(&vbd1, &vbd2);                              // separate block spaces
  EXPECT_EQ(&vbd1.scheduler(), &vbd2.scheduler());      // one spindle
  EXPECT_EQ(&vbd1, &h.disk());                          // first claims primary
  // Writes land in the right VBD only.
  vbd1.poke_token(7, 111);
  EXPECT_EQ(vbd2.token(7), storage::kZeroBlockToken);
}

TEST(HostTest, VbdPersistsAcrossDetach) {
  Simulator sim;
  Host h{sim, "h", Geometry::from_mib(16)};
  vm::Domain d{sim, 3, "d", 4};
  h.attach_domain(d);
  h.vbd_for(3).poke_token(5, 42);
  h.backend_for(3).start_write_tracking(core::BitmapKind::kLayered);
  h.detach_domain(d);
  // The base image and the tracking bitmap survive the VM's absence —
  // that's what makes the later incremental migration back possible.
  EXPECT_EQ(h.vbd_for(3).token(5), 42u);
  EXPECT_TRUE(h.backend_for(3).tracking());
  h.attach_domain(d);
  EXPECT_EQ(d.frontend().backend(), &h.backend_for(3));
}

TEST(HostTest, DefaultBackendClaimedByFirstDomain) {
  Simulator sim;
  Host h{sim, "h", Geometry::from_mib(16)};
  auto& default_be = h.backend();  // created before any domain attaches
  vm::Domain d{sim, 9, "d", 4};
  h.attach_domain(d);
  EXPECT_EQ(&default_be, d.frontend().backend());
  EXPECT_EQ(default_be.served_domain(), 9u);
}

TEST(HostTest, Interconnect) {
  Simulator sim;
  Host a{sim, "a", Geometry::from_mib(16)};
  Host b{sim, "b", Geometry::from_mib(16)};
  EXPECT_FALSE(a.connected_to(b));
  Host::interconnect(a, b);
  EXPECT_TRUE(a.connected_to(b));
  EXPECT_TRUE(b.connected_to(a));
  EXPECT_NO_THROW(a.link_to(b));
  EXPECT_NO_THROW(b.link_to(a));
  Host c{sim, "c", Geometry::from_mib(16)};
  EXPECT_THROW(a.link_to(c), std::out_of_range);
}

class MemoryMigratorTest : public ::testing::Test {
 protected:
  MemoryMigratorTest() : link_{sim_, fast_link()}, stream_{sim_, link_} {}

  static net::LinkParams fast_link() {
    net::LinkParams p;
    p.bandwidth_mibps = 1000.0;
    p.latency = sim::Duration::micros(10);
    return p;
  }

  /// Drain the stream applying pages into `shadow`.
  Task<void> apply_loop(vm::GuestMemory& shadow) {
    for (;;) {
      auto m = co_await stream_.recv();
      if (!m) break;
      if (const auto* pages = m->get_if<core::MemPagesMsg>()) {
        for (const auto& [p, v] : pages->pages) shadow.apply_page(p, v);
      } else if (const auto* cpu = m->get_if<core::CpuStateMsg>()) {
        cpu_version_ = cpu->cpu.version;
      }
    }
  }

  Simulator sim_;
  net::Link link_;
  MigStream stream_;
  std::uint64_t cpu_version_ = 0;
};

TEST_F(MemoryMigratorTest, IdleGuestOneIteration) {
  MigrationConfig cfg;
  vm::Domain d{sim_, 1, "vm", 4};  // 4 MiB = 1024 pages
  vm::GuestMemory shadow{4};
  MemoryMigrator mm{sim_, cfg};
  sim_.spawn(apply_loop(shadow));
  MemoryMigrator::PrecopyResult res;
  sim_.spawn([](MemoryMigrator& mm, vm::Domain& d, MigStream& s,
                MemoryMigrator::PrecopyResult& out) -> Task<void> {
    out = co_await mm.precopy(d, s, nullptr);
    s.close();
  }(mm, d, stream_, res));
  sim_.run();
  EXPECT_EQ(res.iterations, 1);
  EXPECT_EQ(res.pages_sent, 1024u);
  EXPECT_GE(res.bytes_sent, 1024u * 4096u);
  EXPECT_TRUE(shadow.content_equals(d.memory()));
}

TEST_F(MemoryMigratorTest, DirtyPagesRetransferred) {
  MigrationConfig cfg;
  cfg.mem_residual_target_pages = 4;
  vm::Domain d{sim_, 1, "vm", 4};
  vm::GuestMemory shadow{4};
  MemoryMigrator mm{sim_, cfg};
  sim_.spawn(apply_loop(shadow));

  // Writer dirties pages while pre-copy runs, then stops.
  bool stop = false;
  sim_.spawn([](Simulator& s, vm::Domain& d, bool& stop) -> Task<void> {
    std::uint64_t p = 0;
    while (!stop) {
      d.touch_memory(p % d.memory().page_count());
      p += 17;
      co_await s.delay(50_us);
    }
  }(sim_, d, stop));

  MemoryMigrator::PrecopyResult res;
  sim_.spawn([](MemoryMigrator& mm, vm::Domain& d, MigStream& s,
                MemoryMigrator::PrecopyResult& out, bool& stop) -> Task<void> {
    out = co_await mm.precopy(d, s, nullptr);
    stop = true;
    // Simulate the freeze: writer stopped; send residual.
    d.suspend();
    co_await mm.send_residual(d, s);
    s.close();
  }(mm, d, stream_, res, stop));
  sim_.run();
  EXPECT_GT(res.iterations, 1);
  EXPECT_GT(res.pages_sent, 1024u);  // some pages sent twice
  EXPECT_TRUE(shadow.content_equals(d.memory()));
  EXPECT_GE(cpu_version_, d.cpu().version);
}

TEST_F(MemoryMigratorTest, ResidualCoversFinalDirt) {
  MigrationConfig cfg;
  vm::Domain d{sim_, 1, "vm", 1};
  vm::GuestMemory shadow{1};
  MemoryMigrator mm{sim_, cfg};
  sim_.spawn(apply_loop(shadow));
  sim_.spawn([](MemoryMigrator& mm, vm::Domain& d, MigStream& s) -> Task<void> {
    co_await mm.precopy(d, s, nullptr);
    // Dirty two pages after pre-copy, then freeze.
    d.touch_memory(1);
    d.touch_memory(2);
    d.suspend();
    const auto res = co_await mm.send_residual(d, s);
    EXPECT_EQ(res.pages, 2u);
    s.close();
  }(mm, d, stream_));
  sim_.run();
  EXPECT_TRUE(shadow.content_equals(d.memory()));
  EXPECT_FALSE(d.memory().dirty_log_enabled());
}

TEST_F(MemoryMigratorTest, DirtyRateAbortFires) {
  MigrationConfig cfg;
  cfg.mem_max_iterations = 10;
  cfg.mem_residual_target_pages = 1;
  cfg.mem_dirty_rate_abort_ratio = 0.5;
  vm::Domain d{sim_, 1, "vm", 1};  // 256 pages
  vm::GuestMemory shadow{1};
  MemoryMigrator mm{sim_, cfg};
  sim_.spawn(apply_loop(shadow));

  // Hammer every page continuously: the dirty set can never shrink.
  bool stop = false;
  sim_.spawn([](Simulator& s, vm::Domain& d, bool& stop) -> Task<void> {
    while (!stop) {
      for (std::uint64_t p = 0; p < d.memory().page_count(); ++p) {
        d.touch_memory(p);
      }
      co_await s.delay(10_us);
    }
  }(sim_, d, stop));

  MemoryMigrator::PrecopyResult res;
  sim_.spawn([](MemoryMigrator& mm, vm::Domain& d, MigStream& s,
                MemoryMigrator::PrecopyResult& out, bool& stop) -> Task<void> {
    out = co_await mm.precopy(d, s, nullptr);
    stop = true;
    s.close();
  }(mm, d, stream_, res, stop));
  sim_.run();
  EXPECT_TRUE(res.aborted_dirty_rate);
  EXPECT_LT(res.iterations, 10);
}

}  // namespace
}  // namespace vmig::hv
