// Byte-exact end-to-end integrity: with payload-backed disks (real 4 KiB
// contents per block), every migration scheme must deliver the source's
// frozen bytes to the destination — not just matching content tokens.

#include <gtest/gtest.h>

#include <cstring>

#include "baselines/delta_forward.hpp"
#include "baselines/freeze_and_copy.hpp"
#include "core/migration_manager.hpp"
#include "simcore/rng.hpp"

namespace vmig::core {
namespace {

using hv::Host;
using sim::Simulator;
using sim::Task;
using storage::BlockRange;
using storage::Geometry;
using namespace vmig::sim::literals;

storage::DiskModelParams fast_disk() {
  storage::DiskModelParams p;
  p.seq_read_mbps = 800.0;
  p.seq_write_mbps = 700.0;
  p.seek = 100_us;
  p.request_overhead = 5_us;
  return p;
}

struct PayloadBed {
  explicit PayloadBed(Simulator& sim, std::uint64_t disk_mib = 16)
      : a{sim, "A", Geometry::from_mib(disk_mib), fast_disk(), /*payloads=*/true},
        b{sim, "B", Geometry::from_mib(disk_mib), fast_disk(), /*payloads=*/true},
        vm{sim, 1, "guest", 4} {
    net::LinkParams lan;
    lan.bandwidth_mibps = 1000.0;
    lan.latency = 50_us;
    Host::interconnect(a, b, lan);
    a.attach_domain(vm);
  }
  Host a, b;
  vm::Domain vm;
};

/// Guest writes `count` blocks of deterministic real bytes from `start`,
/// through the split driver (intercepted and tracked like any guest write).
Task<void> guest_write_bytes(Simulator& sim, vm::Domain& vm,
                             storage::BlockId start, std::uint64_t count,
                             std::uint64_t seed) {
  sim::Rng rng{seed};
  std::vector<std::byte> buf(4096);
  for (storage::BlockId b = start; b < start + count; ++b) {
    for (auto& byte : buf) byte = static_cast<std::byte>(rng.next_u64());
    co_await vm.disk_write_bytes(BlockRange{b, 1}, buf);
    if ((b - start) % 64 == 0) co_await sim.delay(10_us);
  }
}

/// Compare real payload bytes block by block. An absent payload means a
/// never-written block, i.e. all zeros — equivalent to a stored zero block.
::testing::AssertionResult payloads_equal(const storage::VirtualDisk& src,
                                          const storage::VirtualDisk& dst,
                                          std::uint64_t blocks) {
  static const std::vector<std::byte> kZeros(4096, std::byte{0});
  const auto effective = [](std::span<const std::byte> p)
      -> std::span<const std::byte> { return p.empty() ? kZeros : p; };
  for (storage::BlockId b = 0; b < blocks; ++b) {
    const auto s = effective(src.payload(b));
    const auto d = effective(dst.payload(b));
    if (d.size() != s.size()) {
      return ::testing::AssertionFailure()
             << "block " << b << ": payload sizes differ (" << s.size()
             << " vs " << d.size() << ")";
    }
    if (std::memcmp(s.data(), d.data(), s.size()) != 0) {
      return ::testing::AssertionFailure() << "block " << b << ": bytes differ";
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(PayloadIntegrityTest, GuestByteWritesAreTracked) {
  Simulator sim;
  PayloadBed bed{sim};
  bed.a.backend().start_write_tracking(BitmapKind::kLayered);
  sim.spawn(guest_write_bytes(sim, bed.vm, 10, 32, 1));
  sim.run();
  EXPECT_EQ(bed.a.backend().dirty_block_count(), 32u);
  EXPECT_EQ(bed.a.disk().payload(10).size(), 4096u);
  EXPECT_EQ(bed.a.disk().token(10),
            storage::VirtualDisk::hash_bytes(bed.a.disk().payload(10)));
}

TEST(PayloadIntegrityTest, TpmDeliversExactBytes) {
  Simulator sim;
  PayloadBed bed{sim};
  MigrationManager mgr{sim};
  MigrationReport rep;
  sim.spawn([](Simulator& sim, PayloadBed& bed, MigrationManager& mgr,
               MigrationReport& out) -> Task<void> {
    co_await guest_write_bytes(sim, bed.vm, 0, 1024, 7);
    out = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b})).report;
  }(sim, bed, mgr, rep));
  sim.run();
  EXPECT_TRUE(rep.disk_consistent);
  EXPECT_TRUE(payloads_equal(bed.a.disk(), bed.b.disk(), 1024));
}

TEST(PayloadIntegrityTest, BytesWrittenMidMigrationArriveIntact) {
  Simulator sim;
  PayloadBed bed{sim};
  MigrationConfig cfg;
  cfg.disk_max_iterations = 2;
  MigrationManager mgr{sim};
  MigrationReport rep;
  bool stop = false;
  // Writer keeps producing real bytes during the migration (tracked).
  sim.spawn([](Simulator& sim, PayloadBed& bed, bool& stop) -> Task<void> {
    sim::Rng rng{11};
    std::vector<std::byte> buf(4096);
    while (!stop) {
      for (auto& byte : buf) byte = static_cast<std::byte>(rng.next_u64());
      co_await bed.vm.disk_write_bytes(BlockRange{rng.uniform_u64(2048), 1}, buf);
      co_await sim.delay(200_us);
    }
  }(sim, bed, stop));
  sim.spawn([](Simulator& sim, PayloadBed& bed, MigrationManager& mgr,
               MigrationConfig cfg, MigrationReport& out,
               bool& stop) -> Task<void> {
    co_await guest_write_bytes(sim, bed.vm, 0, 512, 7);
    out = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b, .config = cfg})).report;
    stop = true;
  }(sim, bed, mgr, cfg, rep, stop));
  sim.run();
  EXPECT_TRUE(rep.disk_consistent);
  // Every block whose tokens agree must agree byte-for-byte too; blocks
  // rewritten at the destination after resume hold the newer bytes there.
  const auto bm3 = bed.b.backend().snapshot_dirty();
  for (storage::BlockId b = 0; b < 2048; ++b) {
    if (bm3.test(b)) continue;
    const auto s = bed.a.disk().payload(b);
    if (s.empty()) continue;
    const auto d = bed.b.disk().payload(b);
    ASSERT_EQ(s.size(), d.size()) << "block " << b;
    ASSERT_EQ(std::memcmp(s.data(), d.data(), s.size()), 0) << "block " << b;
  }
}

TEST(PayloadIntegrityTest, FreezeAndCopyDeliversExactBytes) {
  Simulator sim;
  PayloadBed bed{sim};
  baseline::BaselineReport rep;
  sim.spawn([](Simulator& sim, PayloadBed& bed,
               baseline::BaselineReport& out) -> Task<void> {
    co_await guest_write_bytes(sim, bed.vm, 0, 1024, 7);
    baseline::FreezeAndCopyMigration m{sim, MigrationConfig{}, bed.vm, bed.a,
                                       bed.b};
    out = co_await m.run();
  }(sim, bed, rep));
  sim.run();
  EXPECT_TRUE(rep.base.disk_consistent);
  EXPECT_TRUE(payloads_equal(bed.a.disk(), bed.b.disk(), 1024));
}

TEST(PayloadIntegrityTest, DeltaForwardDeliversExactBytes) {
  Simulator sim;
  PayloadBed bed{sim};
  baseline::BaselineReport rep;
  sim.spawn([](Simulator& sim, PayloadBed& bed,
               baseline::BaselineReport& out) -> Task<void> {
    co_await guest_write_bytes(sim, bed.vm, 0, 1024, 7);
    baseline::DeltaForwardMigration m{sim, MigrationConfig{}, bed.vm, bed.a,
                                      bed.b};
    out = co_await m.run();
  }(sim, bed, rep));
  sim.run();
  EXPECT_TRUE(rep.base.disk_consistent);
  EXPECT_TRUE(payloads_equal(bed.a.disk(), bed.b.disk(), 1024));
}

TEST(PayloadIntegrityTest, IncrementalReturnDeliversExactBytes) {
  Simulator sim;
  PayloadBed bed{sim};
  MigrationManager mgr{sim};
  MigrationReport back;
  sim.spawn([](Simulator& sim, PayloadBed& bed, MigrationManager& mgr,
               MigrationReport& back) -> Task<void> {
    co_await guest_write_bytes(sim, bed.vm, 0, 1024, 7);
    (void)(co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b})).report;
    // New real bytes at the destination, through the guest path (tracked).
    co_await guest_write_bytes(sim, bed.vm, 100, 64, 13);
    back = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.b, .to = &bed.a})).report;
  }(sim, bed, mgr, back));
  sim.run();
  EXPECT_TRUE(back.incremental);
  EXPECT_TRUE(back.disk_consistent);
  // The blocks rewritten at B must have their exact new bytes back at A.
  EXPECT_TRUE(payloads_equal(bed.b.disk(), bed.a.disk(), 2048));
}

}  // namespace
}  // namespace vmig::core
