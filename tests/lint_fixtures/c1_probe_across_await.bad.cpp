// C1: an RAII probe (ProfScope) must not stay live across a co_await —
// the wall clock keeps ticking while the coroutine is suspended, so the
// span would charge simulated waiting to the probe's category. This is the
// profiler's "no probe spans a suspension" invariant, enforced statically.
#include "obs/profiler.hpp"
#include "simcore/simulator.hpp"

namespace vmig {

sim::Task<void> scan_and_send(sim::Simulator& sim) {
  obs::ProfScope prof{obs::ProfCategory::kBitmapScan};  // expect: C1
  co_await sim.delay(sim::Duration::millis(1));
  co_return;
}

sim::Task<void> guarded_section(sim::Simulator& sim, std::mutex& m) {
  std::lock_guard lock{m};  // expect: C1
  co_await sim.delay(sim::Duration::millis(1));
}

}  // namespace vmig
