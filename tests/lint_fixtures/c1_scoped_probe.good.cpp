// C1 negative: probes scoped to synchronous work only — every ProfScope
// dies before the next suspension point, so wall time is attributed
// correctly even though the surrounding function is a coroutine.
#include "obs/profiler.hpp"
#include "simcore/simulator.hpp"

namespace vmig {

sim::Task<void> scan_and_send(sim::Simulator& sim) {
  {
    obs::ProfScope prof{obs::ProfCategory::kBitmapScan};
    obs::prof_count(obs::ProfCategory::kBitmapScan);
  }
  co_await sim.delay(sim::Duration::millis(1));
  obs::ProfScope after{obs::ProfCategory::kSimDispatch};
  co_return;
}

void not_a_coroutine() {
  // No co_await anywhere: a function-scope probe is fine.
  obs::ProfScope prof{obs::ProfCategory::kSimDispatch};
}

}  // namespace vmig
