// C2: references, pointers, and iterators into containers do not survive a
// co_await — other coroutines run during the suspension and may grow or
// shrink the container, invalidating the binding.
#include <vector>

#include "simcore/simulator.hpp"

namespace vmig {

sim::Task<void> stale_reference(std::vector<int>& v, sim::Simulator& sim) {
  int& slot = v.front();
  co_await sim.delay(sim::Duration::millis(1));
  consume(slot);  // expect: C2
  co_return;
}

sim::Task<void> stale_iterator(std::vector<int>& v, sim::Simulator& sim) {
  auto it = v.begin();
  co_await sim.delay(sim::Duration::millis(1));
  consume(*it);  // expect: C2
}

}  // namespace vmig
