// C2 negative: copy the value out before suspending, or re-look-up after
// every co_await; either way no container binding crosses a suspension.
#include <vector>

#include "simcore/simulator.hpp"

namespace vmig {

sim::Task<void> copy_out(std::vector<int>& v, sim::Simulator& sim) {
  const int value = v.front();
  co_await sim.delay(sim::Duration::millis(1));
  use(value);
  co_return;
}

sim::Task<void> relookup(std::vector<int>& v, sim::Simulator& sim) {
  int& slot = v.front();
  slot = 1;  // used before the suspension: fine
  co_await sim.delay(sim::Duration::millis(1));
  int& fresh = v.front();
  fresh = 2;
}

sim::Task<void> rebind(std::vector<int>& v, sim::Simulator& sim) {
  auto it = v.begin();
  co_await sim.delay(sim::Duration::millis(1));
  it = v.begin();  // rebound after the await before any use
  *it = 3;
}

}  // namespace vmig
