// C3: a lambda handed to the scheduler outlives the enclosing stack frame;
// by-reference captures dangle by the time the timer fires.
#include "simcore/simulator.hpp"

namespace vmig {

void arm(sim::Simulator& sim) {
  int hits = 0;
  sim.schedule_after(sim::Duration::millis(5), [&] { ++hits; });  // expect: C3
  sim.schedule_at(sim::TimePoint::origin(),
                  [&hits] { ++hits; });  // expect: C3
}

}  // namespace vmig
