// C3 negative: scheduler callbacks capture by value — copies or plain
// pointers to objects whose lifetime outlasts the timer.
#include "simcore/simulator.hpp"

namespace vmig {

struct Widget {
  int hits = 0;
};

void arm(sim::Simulator& sim, Widget& w) {
  Widget* wp = &w;  // w outlives the timer by contract
  sim.schedule_after(sim::Duration::millis(5), [wp] { ++wp->hits; });
  const int delta = 2;
  sim.schedule_at(sim::TimePoint::origin(), [wp, delta] { wp->hits += delta; });
  sim.schedule_after(sim::Duration::millis(1), [] {});
}

}  // namespace vmig
