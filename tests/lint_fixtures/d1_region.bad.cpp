// Fixture: region suppression edges. A d1-end lapses after its own line,
// so the read after the pen is flagged; an unopened-on-purpose d2-begin is
// itself reported as unclosed (on the begin line) — a silent
// rest-of-file suppression is exactly what regions must not allow.
#include <chrono>

// vmig-lint: d1-begin -- fixture pen
static long inside_pen() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
// vmig-lint: d1-end

static long after_pen() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // expect: D1
}

// vmig-lint: d2-begin -- forgot the matching end marker       expect: D2
static int no_randomness_here() { return 4; }
