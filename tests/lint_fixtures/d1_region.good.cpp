// Fixture: a scoped d1-begin/d1-end region pens several wall-clock reads
// into one justified block — the file must lint clean. This is the shape
// the self-profiler uses (src/obs/profiler.cpp): the linter would otherwise
// demand a `-ok` waiver on every timed line inside the pen.
#include <chrono>

// vmig-lint: d1-begin -- fixture wall-clock pen; readings never reach
// simulated state
static long pen_read_ns() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
}

static long pen_read_epoch() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
// vmig-lint: d1-end

static long deterministic_after_pen(long simulated_ns) {
  // Past the end line the rule is live again; this stays token-free.
  return simulated_ns * 2;
}
