// Fixture: names that merely contain "time"/"clock" must NOT trigger D1.
struct Time {
  long ns = 0;
};

struct Sim {
  Time now() const { return {}; }
};

long start_time(const Sim& s) { return s.now().ns; }

long run_time(const Sim& s) { return start_time(s); }

struct ClockModel {
  long vclock(long t) const { return t; }  // member named like clock: fine
};

long use(const ClockModel& m) { return m.vclock(Time{3}.ns); }
