// Fixture: every wall-clock source D1 must catch. Not compiled — scanned by
// lint_tool_test, which reads the `// expect: <rule>` markers.
#include <chrono>
#include <ctime>

long bad_now_us() {
  auto t = std::chrono::system_clock::now();  // expect: D1
  auto s = std::chrono::steady_clock::now();  // expect: D1
  (void)s;
  return t.time_since_epoch().count();
}

long bad_epoch() { return time(nullptr); }  // expect: D1

long bad_ticks() { return clock(); }  // expect: D1

void bad_tod() {
  struct timeval {
    long tv_sec;
    long tv_usec;
  } tv;
  gettimeofday(&tv, nullptr);  // expect: D1
}
