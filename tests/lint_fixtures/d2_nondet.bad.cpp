// Fixture: ambient-randomness sources D2 must catch. Scanned by
// lint_tool_test, which reads the `// expect: <rule>` markers.
#include <cstdlib>
#include <random>

int bad_rand() { return std::rand(); }  // expect: D2

void bad_seed(unsigned s) { srand(s); }  // expect: D2

unsigned bad_entropy() {
  std::random_device rd;  // expect: D2
  return rd();
}

int bad_engine() {
  std::mt19937 gen;  // expect: D2
  return static_cast<int>(gen());
}

int bad_temporary() { return static_cast<int>(std::mt19937{}()); }  // expect: D2
