// Fixture: explicitly-seeded engines and look-alike names must NOT trigger D2.
#include <random>

int seeded_brace(unsigned seed) {
  std::mt19937 gen{seed};
  return static_cast<int>(gen());
}

int seeded_paren(unsigned seed) {
  std::mt19937_64 gen(seed);
  return static_cast<int>(gen());
}

using Engine = std::mt19937;  // type alias, not a construction

int via_alias(unsigned seed) {
  Engine gen{seed};
  return static_cast<int>(gen());
}

// Identifiers that merely contain the banned substrings are fine.
int randomize_order(int x) { return x; }
int strand(int x) { return randomize_order(x); }
