// Fixture: scheduler-style code whose only unordered-container traversal is
// an order-free reduction (argmin with a total tie-break on the host name),
// carrying a justified D3 suppression — must lint clean. Mirrors the
// cluster orchestrator's load-ranking idiom, where iteration order cannot
// leak into the schedule because ties are broken deterministically.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

struct HostLoad {
  std::string host;
  int inflight = 0;
};

struct LoadIndex {
  std::unordered_map<std::string, int> inflight_;

  // Pick the least-loaded host. The reduction visits every entry exactly
  // once and the (inflight, name) comparison is a strict total order, so
  // the result is independent of bucket iteration order.
  std::string least_loaded() const {
    std::string best;
    int best_load = -1;
    // vmig-lint: d3-ok -- argmin with total-order tie-break; order-free
    for (const auto& [host, load] : inflight_) {
      if (best_load < 0 || load < best_load ||
          (load == best_load && host < best)) {
        best = host;
        best_load = load;
      }
    }
    return best;
  }

  // Ranked views are built from an explicitly sorted snapshot instead of
  // relying on map order: the deterministic sibling of the loop above.
  std::vector<HostLoad> ranked() const {
    std::vector<HostLoad> out;
    out.reserve(inflight_.size());
    // vmig-lint: d3-ok -- snapshot is fully sorted before use
    for (const auto& [host, load] : inflight_) out.push_back({host, load});
    std::sort(out.begin(), out.end(), [](const HostLoad& a, const HostLoad& b) {
      return a.inflight != b.inflight ? a.inflight < b.inflight
                                      : a.host < b.host;
    });
    return out;
  }
};
