// Fixture: ordered containers and sort-before-iterate patterns must NOT
// trigger D3 (except the explicitly-suppressed collection loop).
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct Exporter {
  std::map<std::string, int> ordered_;
  std::unordered_map<std::string, int> counts_;

  int sum_ordered() const {
    int total = 0;
    for (const auto& [k, v] : ordered_) total += v;  // std::map: fine
    return total;
  }

  std::vector<std::string> sorted_keys() const {
    std::vector<std::string> keys;
    keys.reserve(counts_.size());
    // vmig-lint: d3-ok -- keys are sorted below before any output
    for (const auto& [k, v] : counts_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  int lookup(const std::string& k) const {
    const auto it = counts_.find(k);  // point lookups are order-free: fine
    return it == counts_.end() ? 0 : it->second;
  }
};
