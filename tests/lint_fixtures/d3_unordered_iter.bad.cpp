// Fixture: iteration over unordered containers D3 must catch, including a
// map declared in one scope and iterated in another. Scanned by
// lint_tool_test, which reads the `// expect: <rule>` markers.
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Registry {
  std::unordered_map<std::string, int> pids_;
  std::unordered_set<int> live_;

  int sum() const {
    int total = 0;
    for (const auto& [name, pid] : pids_) total += pid;  // expect: D3
    return total;
  }

  int count() const {
    int n = 0;
    for (auto it = live_.begin(); it != live_.end(); ++it) ++n;  // expect: D3
    return n;
  }
};

int free_fn(const Registry& r) {
  int total = 0;
  for (const auto& [name, pid] : r.pids_) total += pid;  // expect: D3
  return total;
}
