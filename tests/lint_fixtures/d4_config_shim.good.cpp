// Fixture: this file plays the role of the allow-listed config shim; the
// self-test passes `--allow-getenv d4_config_shim`, so its getenv calls
// must NOT be reported.
#include <cstdlib>
#include <string>

std::string config_from_env(const char* key) {
  const char* v = std::getenv(key);
  return v == nullptr ? std::string{} : std::string{v};
}
