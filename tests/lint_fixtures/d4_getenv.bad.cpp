// Fixture: environment reads outside the config shim D4 must catch. Scanned
// by lint_tool_test, which reads the `// expect: <rule>` markers.
#include <cstdlib>

bool trace_enabled() {
  return std::getenv("VMIG_TRACE") != nullptr;  // expect: D4
}

const char* home() { return getenv("HOME"); }  // expect: D4
