#pragma once

// Fixture: idiomatic header hygiene must NOT trigger D5.
#include <memory>
#include <vector>

namespace fixture {

class Buffer {
 public:
  Buffer() : data_(std::make_unique<std::vector<char>>(64)) {}
  Buffer(const Buffer&) = delete;             // deleted fn, not raw delete
  Buffer& operator=(const Buffer&) = delete;  // deleted fn, not raw delete

 private:
  std::unique_ptr<std::vector<char>> data_;
};

}  // namespace fixture
