// expect: D5 -- header missing #pragma once (reported on line 1)
// Fixture: header-hygiene violations D5 must catch. Scanned by
// lint_tool_test, which reads the `// expect: <rule>` markers.
#include <string>

using namespace std;  // expect: D5

struct Buffer {
  Buffer() : data_(new char[64]) {}  // expect: D5
  ~Buffer() { delete[] data_; }  // expect: D5

 private:
  char* data_;
};
