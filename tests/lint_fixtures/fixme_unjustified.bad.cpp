// Suppression hygiene: every `-ok` / `-begin` waiver must say *why* on the
// same line (`-- reason`); a bare waiver still suppresses, but is itself a
// fixable "fixme" finding so it cannot linger unexplained.
#include <ctime>

namespace vmig {

long bare_waiver() { return clock(); }  // vmig-lint: d1-ok (expect: D1)

// vmig-lint: d2-begin (expect: D2)
int r() { return rand(); }
// vmig-lint: d2-end

long justified() { return clock(); }  // vmig-lint: d1-ok -- fixture clock

}  // namespace vmig
