// H1: no heap allocation inside a declared hot region. The pen is armed by
// `hot-begin`/`hot-end`; identical code outside the pen is not flagged.
#include <functional>
#include <memory>

namespace vmig {

void cold_path() {
  auto fine_here = std::make_unique<int>(7);  // outside the pen: fine
}

// vmig-lint: hot-begin -- fixture pen: per-event dispatch stand-in
void hot_path() {
  auto p = std::make_unique<int>(7);        // expect: H1
  auto s = std::make_shared<int>(8);        // expect: H1
  std::function<void()> cb = [] {};         // expect: H1
}
// vmig-lint: hot-end

void cold_again() {
  auto also_fine = std::make_shared<int>(9);
}

}  // namespace vmig
