// H2: no container growth or string building inside a declared hot region.
#include <string>
#include <vector>

namespace vmig {

// vmig-lint: hot-begin -- fixture pen: per-block mark stand-in
void hot_mark(std::vector<int>& log, int block) {
  log.push_back(block);                       // expect: H2
  std::string label = std::to_string(block);  // expect: H2
  label.append("!");                          // expect: H2
}
// vmig-lint: hot-end

void cold_mark(std::vector<int>& log, int block) {
  log.push_back(block);  // outside the pen: fine
}

}  // namespace vmig
