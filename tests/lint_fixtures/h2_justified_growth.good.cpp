// H2 negative: growth inside a pen is acceptable when justified — the
// canonical case is a push_back that only ever fills capacity reserved up
// front (a ring buffer warming up).
#include <vector>

namespace vmig {

struct Ring {
  std::vector<int> ring_;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;

  // vmig-lint: hot-begin -- fixture pen: O(1) event record stand-in
  void push(int v) {
    if (ring_.size() < cap_) {
      // vmig-lint: h2-ok -- fills capacity reserved by ctor, no realloc
      ring_.push_back(v);
      return;
    }
    ring_[head_] = v;
    head_ = (head_ + 1) % cap_;
  }
  // vmig-lint: hot-end
};

}  // namespace vmig
