// An unclosed hot pen arms the H-rules to end-of-file, which is never what
// the author meant; the dangling begin is reported (and --fix can close it).
#include <vector>

namespace vmig {

// vmig-lint: hot-begin -- pen with no end (expect: H1)
void hot(std::vector<int>& v) {
  v.push_back(1);  // expect: H2
}

}  // namespace vmig
