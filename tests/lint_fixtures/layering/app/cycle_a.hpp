#pragma once
// Half of an include cycle (L2): same layer, so no L1 fires, but the
// file-level graph has a loop.
#include "app/cycle_b.hpp"
inline int cycle_a() { return 1; }
