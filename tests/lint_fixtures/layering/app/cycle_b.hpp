#pragma once
// Other half of the include cycle (L2).
#include "app/cycle_a.hpp"
inline int cycle_b() { return 2; }
