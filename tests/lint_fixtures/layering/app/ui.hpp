#pragma once
// Top layer: downward includes are fine.
#include "base/util.hpp"
inline int ui() { return util() + 1; }
