#pragma once
// L1 back-edge: a base-layer file reaching up into the app layer.
#include "app/ui.hpp"
inline int uplink() { return ui() + 1; }
