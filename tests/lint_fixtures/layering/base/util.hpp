#pragma once
// Bottom layer: no project includes.
inline int util() { return 1; }
