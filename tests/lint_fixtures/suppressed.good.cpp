// Fixture: every rule violated, every violation carrying a justified
// suppression — the file must lint clean. Exercises both same-line and
// standalone-comment-above suppression placement.
#include <chrono>
#include <cstdlib>
#include <random>
#include <string>
#include <unordered_map>

std::unordered_map<std::string, int> g_counts;

long stamp() {
  // Pretend this is a debug-only path that genuinely wants host time.
  return std::chrono::system_clock::now()  // vmig-lint: d1-ok -- debug only
      .time_since_epoch()
      .count();
}

int entropy() {
  // vmig-lint: d2-ok -- fixture demonstrates suppression on the line above
  std::random_device rd;
  return static_cast<int>(rd());
}

int total() {
  int n = 0;
  for (const auto& [k, v] : g_counts) n += v;  // vmig-lint: d3-ok -- order-free sum
  return n;
}

bool flag() {
  return std::getenv("FIXTURE_FLAG") != nullptr;  // vmig-lint: d4-ok -- fixture
}

void churn() {
  int* p = new int{7};  // vmig-lint: d5-ok -- fixture
  delete p;  // vmig-lint: d5-ok -- fixture
}
