// vmig_lint self-tests: the fixture corpus under tests/lint_fixtures/ pins
// every rule's positive and negative cases, and inline snippets pin the
// cross-file name collection, suppression placement, and report format.
//
// Fixture contract: files named *.bad.* must produce exactly the findings
// marked with `// expect: <rule>` comments (matched by line); files named
// *.good.* must lint clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace {

namespace fs = std::filesystem;
using vmig::lint::Finding;
using vmig::lint::Options;

std::string fixture_dir() { return VMIG_LINT_FIXTURE_DIR; }

std::string read_file(const fs::path& p) {
  std::ifstream in{p, std::ios::binary};
  EXPECT_TRUE(in) << "cannot open fixture " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// (line, rule) pairs declared by `// expect: <rule>` markers.
std::multiset<std::pair<int, std::string>> parse_markers(
    const std::string& content) {
  std::multiset<std::pair<int, std::string>> out;
  std::istringstream in{content};
  std::string line;
  for (int ln = 1; std::getline(in, line); ++ln) {
    for (std::size_t pos = 0;
         (pos = line.find("expect: D", pos)) != std::string::npos; ++pos) {
      out.emplace(ln, line.substr(pos + 8, 2));
    }
  }
  return out;
}

std::multiset<std::pair<int, std::string>> as_pairs(
    const std::vector<Finding>& findings) {
  std::multiset<std::pair<int, std::string>> out;
  for (const auto& f : findings) out.emplace(f.line, f.rule);
  return out;
}

/// Options matching the ctest `lint` invocation semantics: unordered names
/// collected from the file itself, and the fixture config shim allow-listed.
Options fixture_options(const std::string& content) {
  Options o;
  o.unordered_names = vmig::lint::collect_unordered_names(content);
  o.getenv_allowlist = {"d4_config_shim"};
  return o;
}

std::vector<fs::path> fixtures_matching(const std::string& tag) {
  std::vector<fs::path> out;
  for (const auto& e : fs::directory_iterator{fixture_dir()}) {
    if (e.is_regular_file() &&
        e.path().filename().string().find(tag) != std::string::npos) {
      out.push_back(e.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(LintFixtures, CorpusIsPresent) {
  EXPECT_GE(fixtures_matching(".bad.").size(), 5u);
  EXPECT_GE(fixtures_matching(".good.").size(), 5u);
}

TEST(LintFixtures, BadFilesProduceExactlyTheMarkedFindings) {
  for (const auto& p : fixtures_matching(".bad.")) {
    const std::string content = read_file(p);
    const auto expected = parse_markers(content);
    ASSERT_FALSE(expected.empty()) << p << " has no expect markers";
    const auto got = as_pairs(vmig::lint::lint_content(
        p.generic_string(), content, fixture_options(content)));
    EXPECT_EQ(got, expected) << "fixture: " << p;
  }
}

TEST(LintFixtures, GoodFilesLintClean) {
  for (const auto& p : fixtures_matching(".good.")) {
    const std::string content = read_file(p);
    const auto findings = vmig::lint::lint_content(
        p.generic_string(), content, fixture_options(content));
    EXPECT_TRUE(findings.empty())
        << "fixture " << p << " first finding: "
        << (findings.empty() ? "" : vmig::lint::format_finding(findings[0]));
  }
}

TEST(LintRules, CrossFileUnorderedNameIsCaught) {
  const std::string header =
      "#pragma once\n"
      "#include <unordered_map>\n"
      "struct S { std::unordered_map<int, int> table_; };\n";
  const std::string source =
      "int f(const S& s) {\n"
      "  int n = 0;\n"
      "  for (const auto& [k, v] : s.table_) n += v;\n"
      "  return n;\n"
      "}\n";
  Options o;
  const auto names = vmig::lint::collect_unordered_names(header);
  EXPECT_EQ(names, std::set<std::string>{"table_"});
  o.unordered_names = names;
  const auto findings = vmig::lint::lint_content("s.cpp", source, o);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "D3");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintRules, CollectorSeesMembersAndReferenceParameters) {
  const auto names = vmig::lint::collect_unordered_names(
      "#include <unordered_set>\n"
      "void g(const std::unordered_set<int>& seen);\n"
      "std::unordered_map<long, long> totals;\n"
      "using Alias = std::unordered_map<int, int>;\n");
  EXPECT_TRUE(names.count("seen") == 1);
  EXPECT_TRUE(names.count("totals") == 1);
  // Known limitation: alias targets (`using X = std::unordered_map<...>;`)
  // are not resolved — loops over aliased maps need a manual suppression.
  EXPECT_TRUE(names.count("Alias") == 0);
}

TEST(LintRules, SuppressionOnSameLineAndLineAbove) {
  Options o;
  o.unordered_names = {"m_"};
  const std::string same_line =
      "int f() {\n"
      "  int n = 0;\n"
      "  for (const auto& [k, v] : m_) n += v;  // vmig-lint: d3-ok -- sum\n"
      "  return n;\n"
      "}\n";
  EXPECT_TRUE(vmig::lint::lint_content("x.cpp", same_line, o).empty());

  const std::string line_above =
      "int f() {\n"
      "  int n = 0;\n"
      "  // vmig-lint: d3-ok -- order-free accumulation\n"
      "  for (const auto& [k, v] : m_) n += v;\n"
      "  return n;\n"
      "}\n";
  EXPECT_TRUE(vmig::lint::lint_content("x.cpp", line_above, o).empty());

  // A suppression for one rule must not silence another.
  const std::string wrong_rule =
      "int f() {\n"
      "  for (const auto& [k, v] : m_) {}  // vmig-lint: d1-ok -- mismatched\n"
      "}\n";
  EXPECT_EQ(vmig::lint::lint_content("x.cpp", wrong_rule, o).size(), 1u);
}

TEST(LintRules, RegionCoversBeginThroughEndInclusive) {
  Options o;
  const std::string content =
      "// vmig-lint: d1-begin -- timing pen\n"
      "long a() { return clock(); }\n"
      "long b() { return time(nullptr); }\n"
      "// vmig-lint: d1-end\n"
      "long c() { return clock(); }\n";
  const auto findings = vmig::lint::lint_content("x.cpp", content, o);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "D1");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(LintRules, UnclosedRegionIsReportedOnItsBeginLine) {
  Options o;
  const std::string content =
      "int f();\n"
      "// vmig-lint: d1-begin -- pen with no end\n"
      "long a() { return clock(); }\n";
  const auto findings = vmig::lint::lint_content("x.cpp", content, o);
  // The open region still suppresses to EOF (the clock() read produces no
  // finding), but the dangling begin itself is one — it cannot silently
  // waive the rest of the file.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "D1");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("never closed"), std::string::npos);
}

TEST(LintRules, RegionForOneRuleDoesNotSilenceAnother) {
  Options o;
  const std::string content =
      "// vmig-lint: d2-begin -- randomness pen\n"
      "long a() { return clock(); }\n"
      "// vmig-lint: d2-end\n";
  const auto findings = vmig::lint::lint_content("x.cpp", content, o);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "D1");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintRules, PragmaOnceOnlyRequiredInHeaders) {
  const std::string body = "int f();\n";
  Options o;
  const auto hpp = vmig::lint::lint_content("a.hpp", body, o);
  ASSERT_EQ(hpp.size(), 1u);
  EXPECT_EQ(hpp[0].rule, "D5");
  EXPECT_EQ(hpp[0].line, 1);
  EXPECT_TRUE(vmig::lint::lint_content("a.cpp", body, o).empty());
}

TEST(LintRules, BannedTokensInsideCommentsAndStringsAreIgnored) {
  Options o;
  const std::string content =
      "// system_clock and std::rand() are discussed here only\n"
      "const char* kDoc = \"call getenv(name) or time(nullptr)\";\n"
      "/* for (auto& x : hash_map_) delete x; */\n";
  EXPECT_TRUE(vmig::lint::lint_content("doc.cpp", content, o).empty());
}

TEST(LintReport, FormatIsFileLineRule) {
  const Finding f{"src/a.cpp", 42, "D1", "wall-clock source 'system_clock'",
                  "why"};
  EXPECT_EQ(vmig::lint::format_finding(f),
            "src/a.cpp:42:D1: wall-clock source 'system_clock' (why)");
}

TEST(LintReport, EveryRuleHasARationale) {
  const auto& ids = vmig::lint::rule_ids();
  ASSERT_EQ(ids.size(), 5u);
  for (const auto& id : ids) {
    EXPECT_FALSE(vmig::lint::rule_rationale(id).empty()) << id;
  }
  EXPECT_TRUE(vmig::lint::rule_rationale("D9").empty());
}

}  // namespace
