// vmig_lint self-tests: the fixture corpus under tests/lint_fixtures/ pins
// every rule's positive and negative cases, and inline snippets pin the
// cross-file name collection, suppression placement, and report format.
//
// Fixture contract: files named *.bad.* must produce exactly the findings
// marked with `// expect: <rule>` comments (matched by line); files named
// *.good.* must lint clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace {

namespace fs = std::filesystem;
using vmig::lint::Finding;
using vmig::lint::Options;

std::string fixture_dir() { return VMIG_LINT_FIXTURE_DIR; }

std::string read_file(const fs::path& p) {
  std::ifstream in{p, std::ios::binary};
  EXPECT_TRUE(in) << "cannot open fixture " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// (line, rule) pairs declared by `// expect: <rule>` markers, any family.
std::multiset<std::pair<int, std::string>> parse_markers(
    const std::string& content) {
  std::multiset<std::pair<int, std::string>> out;
  std::istringstream in{content};
  std::string line;
  for (int ln = 1; std::getline(in, line); ++ln) {
    for (std::size_t pos = 0;
         (pos = line.find("expect: ", pos)) != std::string::npos; ++pos) {
      const std::string rule = line.substr(pos + 8, 2);
      if (rule.size() == 2 && rule[0] >= 'A' && rule[0] <= 'Z' &&
          rule[1] >= '0' && rule[1] <= '9') {
        out.emplace(ln, rule);
      }
    }
  }
  return out;
}

std::multiset<std::pair<int, std::string>> as_pairs(
    const std::vector<Finding>& findings) {
  std::multiset<std::pair<int, std::string>> out;
  for (const auto& f : findings) out.emplace(f.line, f.rule);
  return out;
}

/// Options matching the ctest `lint` invocation semantics: unordered names
/// collected from the file itself, and the fixture config shim allow-listed.
Options fixture_options(const std::string& content) {
  Options o;
  o.unordered_names = vmig::lint::collect_unordered_names(content);
  o.getenv_allowlist = {"d4_config_shim"};
  return o;
}

std::vector<fs::path> fixtures_matching(const std::string& tag) {
  std::vector<fs::path> out;
  for (const auto& e : fs::directory_iterator{fixture_dir()}) {
    if (e.is_regular_file() &&
        e.path().filename().string().find(tag) != std::string::npos) {
      out.push_back(e.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(LintFixtures, CorpusIsPresent) {
  EXPECT_GE(fixtures_matching(".bad.").size(), 5u);
  EXPECT_GE(fixtures_matching(".good.").size(), 5u);
}

TEST(LintFixtures, BadFilesProduceExactlyTheMarkedFindings) {
  for (const auto& p : fixtures_matching(".bad.")) {
    const std::string content = read_file(p);
    const auto expected = parse_markers(content);
    ASSERT_FALSE(expected.empty()) << p << " has no expect markers";
    const auto got = as_pairs(vmig::lint::lint_content(
        p.generic_string(), content, fixture_options(content)));
    EXPECT_EQ(got, expected) << "fixture: " << p;
  }
}

TEST(LintFixtures, GoodFilesLintClean) {
  for (const auto& p : fixtures_matching(".good.")) {
    const std::string content = read_file(p);
    const auto findings = vmig::lint::lint_content(
        p.generic_string(), content, fixture_options(content));
    EXPECT_TRUE(findings.empty())
        << "fixture " << p << " first finding: "
        << (findings.empty() ? "" : vmig::lint::format_finding(findings[0]));
  }
}

TEST(LintRules, CrossFileUnorderedNameIsCaught) {
  const std::string header =
      "#pragma once\n"
      "#include <unordered_map>\n"
      "struct S { std::unordered_map<int, int> table_; };\n";
  const std::string source =
      "int f(const S& s) {\n"
      "  int n = 0;\n"
      "  for (const auto& [k, v] : s.table_) n += v;\n"
      "  return n;\n"
      "}\n";
  Options o;
  const auto names = vmig::lint::collect_unordered_names(header);
  EXPECT_EQ(names, std::set<std::string>{"table_"});
  o.unordered_names = names;
  const auto findings = vmig::lint::lint_content("s.cpp", source, o);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "D3");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintRules, CollectorSeesMembersAndReferenceParameters) {
  const auto names = vmig::lint::collect_unordered_names(
      "#include <unordered_set>\n"
      "void g(const std::unordered_set<int>& seen);\n"
      "std::unordered_map<long, long> totals;\n"
      "using Alias = std::unordered_map<int, int>;\n");
  EXPECT_TRUE(names.count("seen") == 1);
  EXPECT_TRUE(names.count("totals") == 1);
  // Known limitation: alias targets (`using X = std::unordered_map<...>;`)
  // are not resolved — loops over aliased maps need a manual suppression.
  EXPECT_TRUE(names.count("Alias") == 0);
}

TEST(LintRules, SuppressionOnSameLineAndLineAbove) {
  Options o;
  o.unordered_names = {"m_"};
  const std::string same_line =
      "int f() {\n"
      "  int n = 0;\n"
      "  for (const auto& [k, v] : m_) n += v;  // vmig-lint: d3-ok -- sum\n"
      "  return n;\n"
      "}\n";
  EXPECT_TRUE(vmig::lint::lint_content("x.cpp", same_line, o).empty());

  const std::string line_above =
      "int f() {\n"
      "  int n = 0;\n"
      "  // vmig-lint: d3-ok -- order-free accumulation\n"
      "  for (const auto& [k, v] : m_) n += v;\n"
      "  return n;\n"
      "}\n";
  EXPECT_TRUE(vmig::lint::lint_content("x.cpp", line_above, o).empty());

  // A suppression for one rule must not silence another.
  const std::string wrong_rule =
      "int f() {\n"
      "  for (const auto& [k, v] : m_) {}  // vmig-lint: d1-ok -- mismatched\n"
      "}\n";
  EXPECT_EQ(vmig::lint::lint_content("x.cpp", wrong_rule, o).size(), 1u);
}

TEST(LintRules, RegionCoversBeginThroughEndInclusive) {
  Options o;
  const std::string content =
      "// vmig-lint: d1-begin -- timing pen\n"
      "long a() { return clock(); }\n"
      "long b() { return time(nullptr); }\n"
      "// vmig-lint: d1-end\n"
      "long c() { return clock(); }\n";
  const auto findings = vmig::lint::lint_content("x.cpp", content, o);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "D1");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(LintRules, UnclosedRegionIsReportedOnItsBeginLine) {
  Options o;
  const std::string content =
      "int f();\n"
      "// vmig-lint: d1-begin -- pen with no end\n"
      "long a() { return clock(); }\n";
  const auto findings = vmig::lint::lint_content("x.cpp", content, o);
  // The open region still suppresses to EOF (the clock() read produces no
  // finding), but the dangling begin itself is one — it cannot silently
  // waive the rest of the file.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "D1");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("never closed"), std::string::npos);
}

TEST(LintRules, RegionForOneRuleDoesNotSilenceAnother) {
  Options o;
  const std::string content =
      "// vmig-lint: d2-begin -- randomness pen\n"
      "long a() { return clock(); }\n"
      "// vmig-lint: d2-end\n";
  const auto findings = vmig::lint::lint_content("x.cpp", content, o);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "D1");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintRules, PragmaOnceOnlyRequiredInHeaders) {
  const std::string body = "int f();\n";
  Options o;
  const auto hpp = vmig::lint::lint_content("a.hpp", body, o);
  ASSERT_EQ(hpp.size(), 1u);
  EXPECT_EQ(hpp[0].rule, "D5");
  EXPECT_EQ(hpp[0].line, 1);
  EXPECT_TRUE(vmig::lint::lint_content("a.cpp", body, o).empty());
}

TEST(LintRules, BannedTokensInsideCommentsAndStringsAreIgnored) {
  Options o;
  const std::string content =
      "// system_clock and std::rand() are discussed here only\n"
      "const char* kDoc = \"call getenv(name) or time(nullptr)\";\n"
      "/* for (auto& x : hash_map_) delete x; */\n";
  EXPECT_TRUE(vmig::lint::lint_content("doc.cpp", content, o).empty());
}

TEST(LintReport, FormatIsFileLineRule) {
  Finding f;
  f.file = "src/a.cpp";
  f.line = 42;
  f.rule = "D1";
  f.message = "wall-clock source 'system_clock'";
  f.rationale = "why";
  EXPECT_EQ(vmig::lint::format_finding(f),
            "src/a.cpp:42:D1: wall-clock source 'system_clock' (why)");
  EXPECT_EQ(vmig::lint::format_finding_github(f),
            "::error file=src/a.cpp,line=42::D1: wall-clock source "
            "'system_clock'");
}

TEST(LintReport, EveryRuleHasARationale) {
  const auto& ids = vmig::lint::rule_ids();
  ASSERT_EQ(ids.size(), 12u);  // D1-D5, C1-C3, H1-H2, L1-L2
  for (const auto& id : ids) {
    EXPECT_FALSE(vmig::lint::rule_rationale(id).empty()) << id;
  }
  EXPECT_TRUE(vmig::lint::rule_rationale("D9").empty());
}

// ------------------------- coroutine safety (C) --------------------------

// The profiler's core invariant — no ProfScope spans a suspension point —
// is enforced statically by C1. The seeded bad fixture must keep failing;
// if this test breaks, the profiler's wall-time attribution is no longer
// protected by the lint gate.
TEST(LintCoroutine, ProfScopeAcrossSuspensionIsViolation) {
  const fs::path p =
      fs::path{fixture_dir()} / "c1_probe_across_await.bad.cpp";
  const std::string content = read_file(p);
  const auto findings = vmig::lint::lint_content(
      p.generic_string(), content, fixture_options(content));
  ASSERT_FALSE(findings.empty());
  for (const auto& f : findings) EXPECT_EQ(f.rule, "C1");
}

TEST(LintCoroutine, PenTypeListIsConfigurable) {
  Options o;
  const std::string content =
      "Task<void> f(Simulator& sim) {\n"
      "  MySpan span{1};\n"
      "  co_await sim.delay(d);\n"
      "  co_return;\n"
      "}\n";
  EXPECT_TRUE(vmig::lint::lint_content("x.cpp", content, o).empty());
  o.raii_pen_types.insert("MySpan");
  const auto findings = vmig::lint::lint_content("x.cpp", content, o);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "C1");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintCoroutine, UseBeforeAwaitAndRebindAreClean) {
  Options o;
  const std::string content =
      "Task<void> f(std::vector<int>& v, Simulator& sim) {\n"
      "  auto it = v.begin();\n"
      "  consume(*it);\n"
      "  co_await sim.delay(d);\n"
      "  it = v.begin();\n"
      "  consume(*it);\n"
      "}\n";
  EXPECT_TRUE(vmig::lint::lint_content("x.cpp", content, o).empty());
}

TEST(LintCoroutine, FamilyFilterSelectsRules) {
  Options o;
  const std::string content =
      "Task<void> f(Simulator& sim) {\n"
      "  std::lock_guard g{m};\n"
      "  co_await sim.delay(d);\n"
      "  long t = clock();\n"
      "}\n";
  o.families = {'C'};
  auto findings = vmig::lint::lint_content("x.cpp", content, o);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "C1");
  o.families = {'D'};
  findings = vmig::lint::lint_content("x.cpp", content, o);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "D1");
}

// ------------------------- hot regions (H) -------------------------------

TEST(LintHot, RulesAreSilentOutsidePens) {
  Options o;
  const std::string content =
      "void cold(std::vector<int>& v) {\n"
      "  v.push_back(1);\n"
      "  auto p = std::make_unique<int>(2);\n"
      "}\n";
  EXPECT_TRUE(vmig::lint::lint_content("x.cpp", content, o).empty());
}

TEST(LintHot, SuppressionRegionInsideAPenWins) {
  Options o;
  const std::string content =
      "// vmig-lint: hot-begin -- test pen\n"
      "// vmig-lint: h2-begin -- warm-up fills reserved capacity\n"
      "void hot(std::vector<int>& v) { v.push_back(1); }\n"
      "// vmig-lint: h2-end\n"
      "void hot2(std::vector<int>& v) { v.push_back(2); }\n"
      "// vmig-lint: hot-end\n";
  const auto findings = vmig::lint::lint_content("x.cpp", content, o);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "H2");
  EXPECT_EQ(findings[0].line, 5);
}

// ------------------------- mechanical fixes ------------------------------

TEST(LintFix, ClosesUnclosedRegionsAtEof) {
  Options o;
  const std::string content =
      "// vmig-lint: hot-begin -- pen\n"
      "void hot(std::vector<int>& v) { v.push_back(1); }\n";
  const auto findings = vmig::lint::lint_content("x.cpp", content, o);
  int applied = 0;
  const std::string fixed = vmig::lint::apply_fixes(content, findings, &applied);
  EXPECT_GE(applied, 1);
  EXPECT_NE(fixed.find("// vmig-lint: hot-end"), std::string::npos);
  // The fixed file no longer reports the dangling begin.
  const auto after = vmig::lint::lint_content("x.cpp", fixed, o);
  for (const auto& f : after) {
    EXPECT_EQ(f.message.find("never closed"), std::string::npos);
  }
}

TEST(LintFix, InsertsJustificationStub) {
  Options o;
  const std::string content =
      "long t() { return clock(); }  // vmig-lint: d1-ok\n";
  const auto findings = vmig::lint::lint_content("x.cpp", content, o);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].fix, Finding::Fix::kAddJustification);
  int applied = 0;
  const std::string fixed = vmig::lint::apply_fixes(content, findings, &applied);
  EXPECT_EQ(applied, 1);
  EXPECT_NE(fixed.find("-- FIXME: justify"), std::string::npos);
  // After the stub lands, the fixme finding is gone (the stub counts as a
  // justification textually; replacing FIXME with a reason is on a human).
  EXPECT_TRUE(vmig::lint::lint_content("x.cpp", fixed, o).empty());
}

// ------------------------- layering (L) ----------------------------------

TEST(LintLayers, NormalizeStripsThroughSrc) {
  EXPECT_EQ(vmig::lint::normalize_include_path("/root/repo/src/core/tpm.cpp"),
            "core/tpm.cpp");
  EXPECT_EQ(vmig::lint::normalize_include_path("src/obs/profiler.hpp"),
            "obs/profiler.hpp");
  EXPECT_EQ(vmig::lint::normalize_include_path("tools/lint/lint.cpp"),
            "tools/lint/lint.cpp");
  EXPECT_EQ(
      vmig::lint::normalize_include_path("/root/repo/tests/lint_tool_test.cpp"),
      "tests/lint_tool_test.cpp");
}

TEST(LintLayers, ParseReadsBottomUpDag) {
  const auto layers = vmig::lint::Layers::parse(
      "# comment\n"
      "layer base: base/ util/\n"
      "layer app:  app/\n");
  ASSERT_TRUE(layers.parse_error.empty());
  ASSERT_EQ(layers.layers.size(), 2u);
  EXPECT_EQ(layers.layer_of("base/x.hpp"), 0);
  EXPECT_EQ(layers.layer_of("util/y.hpp"), 0);
  EXPECT_EQ(layers.layer_of("app/z.cpp"), 1);
  EXPECT_EQ(layers.layer_of("elsewhere/w.cpp"), -1);
  EXPECT_EQ(layers.name_of(1), "app");
}

TEST(LintLayers, LongestPrefixPinsFilesBelowTheirDirectory) {
  const auto layers = vmig::lint::Layers::parse(
      "layer bottom: obs/profiler\n"
      "layer mid:    simcore/\n"
      "layer top:    obs/\n");
  ASSERT_TRUE(layers.parse_error.empty());
  EXPECT_EQ(layers.layer_of("obs/profiler.hpp"), 0);
  EXPECT_EQ(layers.layer_of("obs/metrics.hpp"), 2);
  EXPECT_EQ(layers.layer_of("simcore/simulator.cpp"), 1);
}

TEST(LintLayers, MalformedFileReportsParseError) {
  EXPECT_FALSE(vmig::lint::Layers::parse("nonsense line\n").parse_error.empty());
}

/// Load the layering fixture corpus with norms relative to the fixture dir.
std::vector<vmig::lint::FileIncludes> layering_fixture_files() {
  const fs::path root = fs::path{fixture_dir()} / "layering";
  std::vector<vmig::lint::FileIncludes> files;
  for (const auto& e : fs::recursive_directory_iterator{root}) {
    if (!e.is_regular_file() || e.path().extension() != ".hpp") continue;
    const std::string norm =
        e.path().lexically_relative(root).generic_string();
    files.push_back({norm, norm, vmig::lint::collect_includes(read_file(e))});
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.path < b.path; });
  return files;
}

TEST(LintLayers, FixtureBackEdgeAndCycleAreCaught) {
  const auto layers = vmig::lint::Layers::parse(
      read_file(fs::path{fixture_dir()} / "layering" / "layers.txt"));
  ASSERT_TRUE(layers.parse_error.empty());
  const auto findings =
      vmig::lint::check_layering(layering_fixture_files(), layers);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "L2");  // cycle anchored at app/cycle_a.hpp
  EXPECT_EQ(findings[0].file, "app/cycle_a.hpp");
  EXPECT_EQ(findings[1].rule, "L1");  // base/ reaching up into app/
  EXPECT_EQ(findings[1].file, "base/uplink.hpp");
  EXPECT_EQ(findings[1].line, 3);
}

TEST(LintLayers, WaiverCommentSkipsBackEdge) {
  const auto layers = vmig::lint::Layers::parse(
      "layer base: base/\n"
      "layer app:  app/\n");
  std::vector<vmig::lint::FileIncludes> files;
  files.push_back({"app/a.hpp", "app/a.hpp", {}});
  files.push_back(
      {"base/b.hpp", "base/b.hpp",
       vmig::lint::collect_includes(
           "#include \"app/a.hpp\"  // vmig-lint: l1-ok -- transitional\n")});
  EXPECT_TRUE(vmig::lint::check_layering(files, layers).empty());
}

TEST(LintLayers, UnmappedFileIsAnL1Finding) {
  const auto layers = vmig::lint::Layers::parse("layer base: base/\n");
  std::vector<vmig::lint::FileIncludes> files;
  files.push_back({"rogue/r.hpp", "rogue/r.hpp", {}});
  const auto findings = vmig::lint::check_layering(files, layers);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "L1");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintLayers, DotSnapshotIsDeterministic) {
  const auto layers = vmig::lint::Layers::parse(
      read_file(fs::path{fixture_dir()} / "layering" / "layers.txt"));
  const auto files = layering_fixture_files();
  const std::string dot = vmig::lint::include_graph_dot(files, layers);
  EXPECT_EQ(dot, vmig::lint::include_graph_dot(files, layers));
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("cluster"), std::string::npos);
}

}  // namespace
