// Parameterized property sweep: whole-system migration must preserve the
// §III-B requirements — consistency, bounded downtime, finite source
// dependency — across the cross product of workload shapes, bitmap kinds,
// sparse mode, and RNG seeds, at miniature scale for speed.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/migration_manager.hpp"
#include "simcore/rng.hpp"

namespace vmig::core {
namespace {

using hv::Host;
using sim::Simulator;
using sim::Task;
using storage::BlockRange;
using storage::Geometry;
using namespace vmig::sim::literals;

enum class Wl { kIdle, kSteadyWriter, kBurstyWriter, kScanner, kHammer };

const char* wl_name(Wl w) {
  switch (w) {
    case Wl::kIdle:
      return "idle";
    case Wl::kSteadyWriter:
      return "steady";
    case Wl::kBurstyWriter:
      return "bursty";
    case Wl::kScanner:
      return "scanner";
    default:
      return "hammer";
  }
}

/// Drive the guest per shape until stop flips.
Task<void> drive(Simulator& sim, vm::Domain& vm, Wl shape, std::uint64_t seed,
                 bool& stop) {
  sim::Rng rng{seed};
  const std::uint64_t blocks = 16384;  // 64 MiB at 4 KiB
  while (!stop) {
    switch (shape) {
      case Wl::kIdle:
        co_await sim.delay(10_ms);
        break;
      case Wl::kSteadyWriter:
        co_await vm.disk_write(BlockRange{rng.uniform_u64(blocks - 4), 4});
        vm.touch_memory(rng.uniform_u64(vm.memory().page_count()));
        co_await sim.delay(300_us);
        break;
      case Wl::kBurstyWriter:
        for (int i = 0; i < 20 && !stop; ++i) {
          co_await vm.disk_write(BlockRange{rng.uniform_u64(2048), 2});
        }
        co_await sim.delay(20_ms);
        break;
      case Wl::kScanner:
        co_await vm.disk_read(BlockRange{rng.uniform_u64(blocks - 16), 16});
        co_await sim.delay(200_us);
        break;
      case Wl::kHammer:
        co_await vm.disk_write(BlockRange{(rng.uniform_u64(64)) * 16, 16});
        co_await sim.delay(50_us);
        break;
    }
  }
}

using Param = std::tuple<int /*Wl*/, int /*BitmapKind*/, bool /*sparse*/,
                         std::uint64_t /*seed*/>;

class MigrationSweep : public ::testing::TestWithParam<Param> {};

TEST_P(MigrationSweep, RequirementsHold) {
  const auto [wl_i, kind_i, sparse, seed] = GetParam();
  const auto shape = static_cast<Wl>(wl_i);
  const auto kind = static_cast<BitmapKind>(kind_i);

  Simulator sim;
  storage::DiskModelParams disk;
  disk.seq_read_mbps = 800.0;
  disk.seq_write_mbps = 700.0;
  disk.seek = 100_us;
  disk.request_overhead = 5_us;
  Host a{sim, "A", Geometry::from_mib(64), disk};
  Host b{sim, "B", Geometry::from_mib(64), disk};
  net::LinkParams lan;
  lan.bandwidth_mibps = 1000.0;
  lan.latency = 50_us;
  Host::interconnect(a, b, lan);
  vm::Domain vm{sim, 1, "guest", 8};
  a.attach_domain(vm);
  // Populate 40% of the disk so sparse mode has something to skip.
  for (storage::BlockId blk = 0; blk < 6554; ++blk) {
    a.disk().poke_token(blk, 0x5eed000000000000ull + blk);
  }

  bool stop = false;
  sim.spawn(drive(sim, vm, shape, seed, stop), wl_name(shape));

  MigrationConfig cfg;
  cfg.bitmap_kind = kind;
  cfg.skip_unused_blocks = sparse;
  MigrationManager mgr{sim};
  MigrationReport out, back;
  sim.spawn([](Simulator& sim, MigrationManager& mgr, vm::Domain& vm, Host& a,
               Host& b, MigrationConfig cfg, MigrationReport& out,
               MigrationReport& back, bool& stop) -> Task<void> {
    co_await sim.delay(50_ms);
    out = (co_await mgr.migrate({.domain = &vm, .from = &a, .to = &b, .config = cfg})).report;
    co_await sim.delay(200_ms);  // dwell
    back = (co_await mgr.migrate({.domain = &vm, .from = &b, .to = &a, .config = cfg})).report;
    stop = true;
  }(sim, mgr, vm, a, b, cfg, out, back, stop));
  sim.run();

  // Requirement: consistency (§III-B), both directions.
  EXPECT_TRUE(out.disk_consistent) << wl_name(shape);
  EXPECT_TRUE(out.memory_consistent) << wl_name(shape);
  EXPECT_TRUE(back.disk_consistent) << wl_name(shape);
  EXPECT_TRUE(back.memory_consistent) << wl_name(shape);
  // Requirement: live migration with minimal downtime — the guest was
  // suspended only for the freeze phases.
  EXPECT_EQ(vm.total_suspended_time(), out.downtime() + back.downtime());
  EXPECT_LT(out.downtime(), 1_s);
  EXPECT_LT(back.downtime(), 1_s);
  // Requirement: finite dependency — both migrations synchronized fully.
  EXPECT_GE(out.synchronized, out.resumed);
  EXPECT_GE(back.synchronized, back.resumed);
  // Return trip is incremental (pairwise back-hop).
  EXPECT_TRUE(back.incremental);
  // The guest ended up home and running.
  EXPECT_TRUE(a.hosts_domain(vm));
  EXPECT_TRUE(vm.running());
  // Simulation drained completely (no leaked waiters).
  EXPECT_FALSE(sim.has_pending());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MigrationSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),  // workload shapes
                       ::testing::Values(0, 1),           // flat, layered
                       ::testing::Bool(),                 // sparse
                       ::testing::Values(101u, 202u)),    // seeds
    [](const ::testing::TestParamInfo<Param>& info) {
      // No structured bindings here: the preprocessor would split the
      // macro argument on the commas inside the bracket list.
      std::string name = wl_name(static_cast<Wl>(std::get<0>(info.param)));
      name += std::get<1>(info.param) == 0 ? "_flat" : "_layered";
      name += std::get<2>(info.param) ? "_sparse" : "_full";
      name += "_s" + std::to_string(std::get<3>(info.param));
      return name;
    });

}  // namespace
}  // namespace vmig::core
