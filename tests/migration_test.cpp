#include <gtest/gtest.h>

#include <memory>

#include "core/migration_manager.hpp"
#include "core/tpm.hpp"
#include "hypervisor/host.hpp"
#include "simcore/rng.hpp"

namespace vmig::core {
namespace {

using hv::Host;
using sim::Duration;
using sim::Simulator;
using sim::Task;
using storage::BlockRange;
using storage::Geometry;
using namespace vmig::sim::literals;

/// Small, fast testbed: 64 MiB disks, 4 MiB guest memory, 1000 MiB/s LAN.
struct MiniBed {
  explicit MiniBed(Simulator& sim, std::uint64_t disk_mib = 64,
                   std::uint64_t mem_mib = 4)
      : a{sim, "A", Geometry::from_mib(disk_mib), fast_disk()},
        b{sim, "B", Geometry::from_mib(disk_mib), fast_disk()},
        vm{sim, 1, "guest", mem_mib} {
    net::LinkParams lan;
    lan.bandwidth_mibps = 1000.0;
    lan.latency = 50_us;
    Host::interconnect(a, b, lan);
    a.attach_domain(vm);
  }

  static storage::DiskModelParams fast_disk() {
    storage::DiskModelParams p;
    p.seq_read_mbps = 800.0;
    p.seq_write_mbps = 700.0;
    p.seek = 100_us;
    p.request_overhead = 5_us;
    return p;
  }

  Host a;
  Host b;
  vm::Domain vm;
};

MigrationConfig test_config() {
  MigrationConfig cfg;
  cfg.disk_residual_target_blocks = 64;
  return cfg;
}

TEST(TpmMigrationTest, IdleVmMigratesConsistently) {
  Simulator sim;
  MiniBed bed{sim};
  // Give the disk some content first.
  sim.spawn([](vm::Domain& vm) -> Task<void> {
    co_await vm.disk_write(BlockRange{0, 1024});
    co_await vm.disk_write(BlockRange{8000, 512});
  }(bed.vm));
  sim.run();

  MigrationReport rep;
  MigrationManager mgr{sim};
  sim.spawn([](MigrationManager& mgr, MiniBed& bed, MigrationConfig cfg,
               MigrationReport& out) -> Task<void> {
    out = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b, .config = cfg})).report;
  }(mgr, bed, test_config(), rep));
  sim.run();

  EXPECT_TRUE(rep.disk_consistent);
  EXPECT_TRUE(rep.memory_consistent);
  EXPECT_TRUE(bed.b.hosts_domain(bed.vm));
  EXPECT_FALSE(bed.a.hosts_domain(bed.vm));
  EXPECT_TRUE(bed.vm.running());
  EXPECT_TRUE(bed.a.disk().content_equals(bed.b.disk()));
  // Idle guest: exactly one disk iteration, whole disk in the first pass.
  EXPECT_EQ(rep.disk_iterations, 1);
  EXPECT_EQ(rep.blocks_first_pass, bed.a.disk().geometry().block_count);
  EXPECT_EQ(rep.blocks_retransferred, 0u);
  EXPECT_EQ(rep.residual_dirty_blocks, 0u);
  EXPECT_FALSE(rep.incremental);
  // Downtime = overheads + residual + bitmap, far below a second.
  EXPECT_LT(rep.downtime(), 200_ms);
  EXPECT_GT(rep.downtime(), Duration::zero());
  // Amount of data is at least the disk + memory, but not wildly more.
  EXPECT_GE(rep.total_bytes(), bed.a.disk().geometry().total_bytes());
  EXPECT_LT(rep.total_mib(), 64 + 4 + 8);
  EXPECT_EQ(rep.blocks_pulled, 0u);
  EXPECT_EQ(mgr.history().size(), 1u);
}

TEST(TpmMigrationTest, TimelineOrdering) {
  Simulator sim;
  MiniBed bed{sim};
  MigrationReport rep;
  MigrationManager mgr{sim};
  sim.spawn([](MigrationManager& mgr, MiniBed& bed,
               MigrationReport& out) -> Task<void> {
    out = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b})).report;
  }(mgr, bed, rep));
  sim.run();
  EXPECT_LT(rep.started, rep.suspended);
  EXPECT_LT(rep.suspended, rep.resumed);
  EXPECT_LE(rep.resumed, rep.synchronized);
  EXPECT_EQ(rep.downtime(), bed.vm.total_suspended_time());
}

/// A writer that keeps dirtying disk and memory until told to stop.
Task<void> writer(Simulator& sim, vm::Domain& vm, bool& stop,
                  Duration period = 200_us) {
  sim::Rng rng{123};
  while (!stop) {
    const auto blocks = vm.frontend().connected()
                            ? vm.frontend().backend()->disk().geometry().block_count
                            : 0;
    if (blocks > 0) {
      const auto b = rng.uniform_u64(blocks / 4);  // hot quarter of the disk
      co_await vm.disk_write(BlockRange{b, 4});
    }
    vm.touch_memory(rng.uniform_u64(vm.memory().page_count()));
    co_await sim.delay(period);
  }
}

TEST(TpmMigrationTest, LiveWriterStaysConsistent) {
  Simulator sim;
  MiniBed bed{sim};
  bool stop = false;
  sim.spawn(writer(sim, bed.vm, stop));

  MigrationReport rep;
  MigrationManager mgr{sim};
  sim.spawn([](MigrationManager& mgr, MiniBed& bed, MigrationConfig cfg,
               MigrationReport& out, bool& stop) -> Task<void> {
    out = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b, .config = cfg})).report;
    stop = true;
  }(mgr, bed, test_config(), rep, stop));
  sim.run();

  EXPECT_TRUE(rep.disk_consistent);
  EXPECT_TRUE(rep.memory_consistent);
  EXPECT_GT(rep.disk_iterations, 1);        // dirty blocks forced re-iteration
  EXPECT_GT(rep.blocks_retransferred, 0u);
  EXPECT_TRUE(bed.vm.running());
  // The guest kept running: suspension was only the freeze phase.
  EXPECT_EQ(bed.vm.total_suspended_time(), rep.downtime());
  EXPECT_LT(rep.downtime(), 500_ms);
}

TEST(TpmMigrationTest, WriterDirtyDataMovesViaPostCopyOrRetransfer) {
  Simulator sim;
  MiniBed bed{sim};
  MigrationConfig cfg = test_config();
  cfg.disk_max_iterations = 1;  // force everything after iter 1 into post-copy
  bool stop = false;
  sim.spawn(writer(sim, bed.vm, stop));

  MigrationReport rep;
  MigrationManager mgr{sim};
  sim.spawn([](MigrationManager& mgr, MiniBed& bed, MigrationConfig cfg,
               MigrationReport& out, bool& stop) -> Task<void> {
    out = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b, .config = cfg})).report;
    stop = true;
  }(mgr, bed, cfg, rep, stop));
  sim.run();

  EXPECT_TRUE(rep.disk_consistent);
  EXPECT_EQ(rep.disk_iterations, 1);
  EXPECT_GT(rep.residual_dirty_blocks, 0u);
  // Every residual block was accounted for: applied via push/pull, dropped
  // because a local write superseded it, or still in flight when the
  // destination declared itself synchronized (local writes drained the
  // bitmap early). Never more applied than the residue.
  EXPECT_GT(rep.blocks_pushed + rep.blocks_pulled + rep.blocks_dropped, 0u);
  EXPECT_LE(rep.blocks_pushed + rep.blocks_pulled,
            rep.residual_dirty_blocks);
}

TEST(TpmMigrationTest, PostCopyPullServesGuestReads) {
  Simulator sim;
  MiniBed bed{sim};
  MigrationConfig cfg = test_config();
  cfg.disk_max_iterations = 1;
  cfg.push_chunk_blocks = 1;  // slow push so reads beat it to most blocks

  // Keep dirtying a known region until the VM resumes at the destination
  // (so those blocks sit in the freeze bitmap), then immediately read the
  // region back: reads of still-dirty blocks must trigger pulls.
  sim.spawn([](Simulator& sim, MiniBed& bed) -> Task<void> {
    // Dirty an ever-growing region until resume, leaving a sizable residue;
    // pushing it one block at a time takes a while.
    std::uint64_t i = 0;
    while (!bed.b.hosts_domain(bed.vm)) {
      co_await bed.vm.disk_write(
          BlockRange{static_cast<storage::BlockId>((i % 1000) * 16), 16});
      ++i;
      co_await sim.delay(100_us);
    }
    // Read the most recently dirtied blocks first, in reverse: the pusher
    // walks the bitmap ascending, so these are the last blocks it will
    // reach — exactly the case the pull path exists for.
    const std::uint64_t hi = i > 1000 ? 1000 : i;
    for (std::uint64_t j = hi; j-- > 0;) {
      co_await bed.vm.disk_read(
          BlockRange{static_cast<storage::BlockId>(j * 16), 2});
    }
  }(sim, bed));

  MigrationReport rep;
  MigrationManager mgr{sim};
  sim.spawn([](MigrationManager& mgr, MiniBed& bed, MigrationConfig cfg,
               MigrationReport& out) -> Task<void> {
    out = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b, .config = cfg})).report;
  }(mgr, bed, cfg, rep));
  sim.run();

  EXPECT_TRUE(rep.disk_consistent);
  EXPECT_GT(rep.residual_dirty_blocks, 0u);
  EXPECT_GT(rep.blocks_pulled, 0u);  // at least one read raced ahead of push
}

TEST(TpmMigrationTest, DirtyRateAbortTriggersProactiveStop) {
  Simulator sim;
  MiniBed bed{sim, /*disk_mib=*/16};
  MigrationConfig cfg = test_config();
  cfg.disk_max_iterations = 10;
  cfg.disk_residual_target_blocks = 4;

  // Rewrite the whole disk continuously — iterations can never converge.
  bool stop = false;
  sim.spawn([](Simulator& sim, vm::Domain& vm, bool& stop) -> Task<void> {
    std::uint64_t base = 0;
    while (!stop) {
      co_await vm.disk_write(BlockRange{base % 4000, 64});
      base += 64;
      co_await sim.delay(20_us);
    }
  }(sim, bed.vm, stop));

  MigrationReport rep;
  MigrationManager mgr{sim};
  sim.spawn([](MigrationManager& mgr, MiniBed& bed, MigrationConfig cfg,
               MigrationReport& out, bool& stop) -> Task<void> {
    out = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b, .config = cfg})).report;
    stop = true;
  }(mgr, bed, cfg, rep, stop));
  sim.run();

  EXPECT_TRUE(rep.aborted_precopy_dirty_rate);
  EXPECT_LT(rep.disk_iterations, 10);
  EXPECT_TRUE(rep.disk_consistent);
}

TEST(TpmMigrationTest, IncrementalMigrationBackMovesOnlyDelta) {
  Simulator sim;
  MiniBed bed{sim};
  MigrationManager mgr{sim};
  MigrationReport first, back;

  sim.spawn([](Simulator& sim, MigrationManager& mgr, MiniBed& bed,
               MigrationReport& first, MigrationReport& back) -> Task<void> {
    // Prime the disk, migrate A -> B.
    co_await bed.vm.disk_write(BlockRange{0, 2048});
    first = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b})).report;
    // Work at B for a while: dirty a modest set of blocks.
    for (int i = 0; i < 100; ++i) {
      co_await bed.vm.disk_write(
          BlockRange{static_cast<storage::BlockId>(i * 13), 3});
      co_await sim.delay(100_us);
    }
    // Migrate back B -> A: must be incremental.
    back = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.b, .to = &bed.a})).report;
  }(sim, mgr, bed, first, back));
  sim.run();

  EXPECT_FALSE(first.incremental);
  EXPECT_TRUE(back.incremental);
  EXPECT_TRUE(back.disk_consistent);
  EXPECT_TRUE(back.memory_consistent);
  EXPECT_TRUE(bed.a.hosts_domain(bed.vm));
  // IM's first pass is the dirtied delta, not the whole disk.
  EXPECT_LT(back.blocks_first_pass, first.blocks_first_pass / 10);
  EXPECT_LE(back.blocks_first_pass, 100u * 4u);  // <= writes (range may merge)
  EXPECT_GT(back.blocks_first_pass, 0u);
  EXPECT_LT(back.total_bytes(), first.total_bytes() / 4);
  EXPECT_LT(back.total_time(), first.total_time());
  // Disks fully agree after the quiesced return.
  EXPECT_TRUE(bed.a.disk().content_equals(bed.b.disk()));
}

TEST(TpmMigrationTest, RoundTripTwiceRemainsIncremental) {
  Simulator sim;
  MiniBed bed{sim};
  MigrationManager mgr{sim};
  std::vector<MigrationReport> reps;

  sim.spawn([](Simulator& sim, MigrationManager& mgr, MiniBed& bed,
               std::vector<MigrationReport>& reps) -> Task<void> {
    reps.push_back((co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b})).report);
    for (int round = 0; round < 2; ++round) {
      for (int i = 0; i < 20; ++i) {
        co_await bed.vm.disk_write(
            BlockRange{static_cast<storage::BlockId>(500 + i), 1});
        co_await sim.delay(50_us);
      }
      Host& from = (round % 2 == 0) ? bed.b : bed.a;
      Host& to = (round % 2 == 0) ? bed.a : bed.b;
      reps.push_back((co_await mgr.migrate({.domain = &bed.vm, .from = &from, .to = &to})).report);
    }
  }(sim, mgr, bed, reps));
  sim.run();

  ASSERT_EQ(reps.size(), 3u);
  EXPECT_FALSE(reps[0].incremental);
  EXPECT_TRUE(reps[1].incremental);
  EXPECT_TRUE(reps[2].incremental);
  for (const auto& r : reps) {
    EXPECT_TRUE(r.disk_consistent);
    EXPECT_TRUE(r.memory_consistent);
  }
  EXPECT_LT(reps[2].total_bytes(), reps[0].total_bytes() / 10);
}

TEST(TpmMigrationTest, RateLimitSlowsPrecopy) {
  Simulator sim1, sim2;
  auto run_one = [](Simulator& sim, double limit) {
    auto bed = std::make_unique<MiniBed>(sim, 32);
    MigrationConfig cfg;
    cfg.rate_limit_mibps = limit;
    MigrationReport rep;
    MigrationManager mgr{sim};
    sim.spawn([](MigrationManager& mgr, MiniBed& bed, MigrationConfig cfg,
                 MigrationReport& out) -> Task<void> {
      out = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b, .config = cfg})).report;
    }(mgr, *bed, cfg, rep));
    sim.run();
    return rep;
  };
  const auto unlimited = run_one(sim1, 0.0);
  const auto limited = run_one(sim2, 100.0);
  EXPECT_TRUE(limited.disk_consistent);
  EXPECT_GT(limited.precopy_time(), unlimited.precopy_time() * 2);
}

TEST(TpmMigrationTest, FlatAndLayeredBitmapsBehaveIdentically) {
  // 1 GiB disk with writes confined to one hot region: the layered bitmap
  // ships only the dirty leaf parts in the freeze phase, the flat one ships
  // the whole 32 KiB map.
  auto run_kind = [](BitmapKind kind) {
    Simulator sim;
    MiniBed bed{sim, /*disk_mib=*/1024};
    bool stop = false;
    sim.spawn([](Simulator& sim, vm::Domain& vm, bool& stop) -> Task<void> {
      sim::Rng rng{7};
      while (!stop) {
        co_await vm.disk_write(BlockRange{rng.uniform_u64(4096), 4});
        co_await sim.delay(200_us);
      }
    }(sim, bed.vm, stop));
    MigrationConfig cfg;
    cfg.bitmap_kind = kind;
    MigrationReport rep;
    MigrationManager mgr{sim};
    sim.spawn([](MigrationManager& mgr, MiniBed& bed, MigrationConfig cfg,
                 MigrationReport& out, bool& stop) -> Task<void> {
      out = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b, .config = cfg})).report;
      stop = true;
    }(mgr, bed, cfg, rep, stop));
    sim.run();
    return rep;
  };
  const auto flat = run_kind(BitmapKind::kFlat);
  const auto layered = run_kind(BitmapKind::kLayered);
  EXPECT_TRUE(flat.disk_consistent);
  EXPECT_TRUE(layered.disk_consistent);
  // Same deterministic workload: identical transfer counts.
  EXPECT_EQ(flat.blocks_first_pass, layered.blocks_first_pass);
  EXPECT_EQ(flat.blocks_retransferred, layered.blocks_retransferred);
  EXPECT_EQ(flat.residual_dirty_blocks, layered.residual_dirty_blocks);
  // The layered bitmap ships much smaller in the freeze phase.
  EXPECT_LT(layered.bytes_bitmap, flat.bytes_bitmap / 2);
}

TEST(TpmMigrationTest, ProgressListenerSeesOrderedPhases) {
  Simulator sim;
  MiniBed bed{sim};
  MigrationManager mgr{sim};
  std::vector<TpmMigration::Phase> phases;
  std::vector<double> fractions;
  mgr.set_progress_listener(
      [&](TpmMigration::Phase p, double f) {
        phases.push_back(p);
        fractions.push_back(f);
      });
  MigrationReport rep;
  sim.spawn([](MigrationManager& mgr, MiniBed& bed,
               MigrationReport& out) -> Task<void> {
    out = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b})).report;
  }(mgr, bed, rep));
  sim.run();

  ASSERT_GE(phases.size(), 6u);
  EXPECT_EQ(phases.front(), TpmMigration::Phase::kPreparing);
  EXPECT_EQ(phases.back(), TpmMigration::Phase::kDone);
  EXPECT_DOUBLE_EQ(fractions.back(), 1.0);
  // Phases never go backwards.
  for (std::size_t i = 1; i < phases.size(); ++i) {
    EXPECT_LE(static_cast<int>(phases[i - 1]), static_cast<int>(phases[i]));
  }
  // Disk pre-copy fractions are nondecreasing and end near 1.
  double last = 0.0;
  double max_seen = 0.0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (phases[i] == TpmMigration::Phase::kDiskPrecopy) {
      EXPECT_GE(fractions[i], last);
      last = fractions[i];
      max_seen = std::max(max_seen, fractions[i]);
    }
  }
  EXPECT_GT(max_seen, 0.9);
  EXPECT_EQ(std::string{"disk-precopy"},
            TpmMigration::phase_name(TpmMigration::Phase::kDiskPrecopy));
}

TEST(TpmMigrationTest, DowntimeExcludesDiskSize) {
  // Doubling the disk size must not move downtime (the whole point of TPM).
  auto run_size = [](std::uint64_t disk_mib) {
    Simulator sim;
    MiniBed bed{sim, disk_mib};
    MigrationReport rep;
    MigrationManager mgr{sim};
    sim.spawn([](MigrationManager& mgr, MiniBed& bed,
                 MigrationReport& out) -> Task<void> {
      out = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b})).report;
    }(mgr, bed, rep));
    sim.run();
    return rep;
  };
  const auto small = run_size(32);
  const auto large = run_size(128);
  EXPECT_GT(large.total_time(), small.total_time() * 2);
  EXPECT_LT(large.downtime(), small.downtime() * 2 + 20_ms);
}

}  // namespace
}  // namespace vmig::core
