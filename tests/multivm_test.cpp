// Multiple DomUs per host and concurrent migrations: each domain has its
// own split-driver backend (per-VBD), all sharing the host's physical disk
// and NICs — so simultaneous migrations contend realistically and must not
// corrupt each other.

#include <gtest/gtest.h>

#include "core/migration_manager.hpp"
#include "simcore/rng.hpp"

namespace vmig::core {
namespace {

using hv::Host;
using sim::Simulator;
using sim::Task;
using storage::BlockRange;
using storage::Geometry;
using namespace vmig::sim::literals;

storage::DiskModelParams fast_disk() {
  storage::DiskModelParams p;
  p.seq_read_mbps = 800.0;
  p.seq_write_mbps = 700.0;
  p.seek = 100_us;
  p.request_overhead = 5_us;
  return p;
}

net::LinkParams fast_lan() {
  net::LinkParams p;
  p.bandwidth_mibps = 1000.0;
  p.latency = 50_us;
  return p;
}

Task<void> writer(Simulator& sim, vm::Domain& vm, std::uint64_t seed,
                  bool& stop) {
  sim::Rng rng{seed};
  while (!stop) {
    co_await vm.disk_write(BlockRange{rng.uniform_u64(8000), 2});
    vm.touch_memory(rng.uniform_u64(vm.memory().page_count()));
    co_await sim.delay(400_us);
  }
}

TEST(MultiVmTest, TwoDomainsOnOneHostHaveSeparateBackends) {
  Simulator sim;
  Host h{sim, "h", Geometry::from_mib(64), fast_disk()};
  vm::Domain vm1{sim, 1, "vm1", 4};
  vm::Domain vm2{sim, 2, "vm2", 4};
  h.attach_domain(vm1);
  h.attach_domain(vm2);
  EXPECT_NE(vm1.frontend().backend(), vm2.frontend().backend());
  EXPECT_EQ(&h.backend_for(1), vm1.frontend().backend());
  EXPECT_EQ(&h.backend_for(2), vm2.frontend().backend());
  // Tracking is per-domain: vm1's writes don't pollute vm2's bitmap.
  h.backend_for(1).start_write_tracking(BitmapKind::kLayered);
  h.backend_for(2).start_write_tracking(BitmapKind::kLayered);
  sim.spawn([](vm::Domain& a, vm::Domain& b) -> Task<void> {
    co_await a.disk_write(BlockRange{10, 2});
    co_await b.disk_write(BlockRange{50, 3});
  }(vm1, vm2));
  sim.run();
  EXPECT_EQ(h.backend_for(1).dirty_block_count(), 2u);
  EXPECT_EQ(h.backend_for(2).dirty_block_count(), 3u);
}

TEST(MultiVmTest, SharedDiskContention) {
  // Both domains hammer the one physical disk: combined throughput is
  // bounded by the disk, not doubled.
  Simulator sim;
  Host h{sim, "h", Geometry::from_mib(256), fast_disk()};
  vm::Domain vm1{sim, 1, "vm1", 4};
  vm::Domain vm2{sim, 2, "vm2", 4};
  h.attach_domain(vm1);
  h.attach_domain(vm2);
  auto stream = [](vm::Domain& vm) -> Task<void> {
    for (int i = 0; i < 100; ++i) {
      co_await vm.disk_write(BlockRange{static_cast<storage::BlockId>(i) * 256, 256});
    }
  };
  sim.spawn(stream(vm1));
  sim.spawn(stream(vm2));
  sim.run();
  // 200 MiB total at 700 MiB/s ≈ 0.29 s if serialized — and it must be.
  EXPECT_GT(sim.now().to_seconds(), 0.28);
}

TEST(MultiVmTest, OppositeDirectionConcurrentMigrations) {
  // vm1 lives on A, vm2 on B; both migrate at once over the same link pair.
  Simulator sim;
  Host a{sim, "A", Geometry::from_mib(64), fast_disk()};
  Host b{sim, "B", Geometry::from_mib(64), fast_disk()};
  Host::interconnect(a, b, fast_lan());
  vm::Domain vm1{sim, 1, "vm1", 4};
  vm::Domain vm2{sim, 2, "vm2", 4};
  a.attach_domain(vm1);
  b.attach_domain(vm2);
  for (storage::BlockId blk = 0; blk < a.disk().geometry().block_count; ++blk) {
    a.disk().poke_token(blk, 0xAAAA000000000000ull + blk);
    b.disk().poke_token(blk, 0xBBBB000000000000ull + blk);
  }
  bool stop = false;
  sim.spawn(writer(sim, vm1, 1, stop));
  sim.spawn(writer(sim, vm2, 2, stop));

  MigrationManager mgr{sim};
  MigrationReport r1, r2;
  int done = 0;
  sim.spawn([](MigrationManager& mgr, vm::Domain& vm, Host& from, Host& to,
               MigrationReport& out, int& done) -> Task<void> {
    out = (co_await mgr.migrate({.domain = &vm, .from = &from, .to = &to})).report;
    ++done;
  }(mgr, vm1, a, b, r1, done));
  sim.spawn([](MigrationManager& mgr, vm::Domain& vm, Host& from, Host& to,
               MigrationReport& out, int& done) -> Task<void> {
    out = (co_await mgr.migrate({.domain = &vm, .from = &from, .to = &to})).report;
    ++done;
  }(mgr, vm2, b, a, r2, done));
  sim.spawn([](Simulator& s, int& done, bool& stop) -> Task<void> {
    while (done < 2) co_await s.delay(10_ms);
    stop = true;
  }(sim, done, stop));
  sim.run();

  EXPECT_TRUE(r1.disk_consistent);
  EXPECT_TRUE(r1.memory_consistent);
  EXPECT_TRUE(r2.disk_consistent);
  EXPECT_TRUE(r2.memory_consistent);
  EXPECT_TRUE(b.hosts_domain(vm1));
  EXPECT_TRUE(a.hosts_domain(vm2));
  EXPECT_TRUE(vm1.running());
  EXPECT_TRUE(vm2.running());
}

TEST(MultiVmTest, EvacuateTwoVmsFromOneHostConcurrently) {
  // Datacenter maintenance: vm1 -> B and vm2 -> C leave host A together,
  // contending on A's disk and separate links.
  Simulator sim;
  Host a{sim, "A", Geometry::from_mib(64), fast_disk()};
  Host b{sim, "B", Geometry::from_mib(64), fast_disk()};
  Host c{sim, "C", Geometry::from_mib(64), fast_disk()};
  Host::interconnect(a, b, fast_lan());
  Host::interconnect(a, c, fast_lan());
  vm::Domain vm1{sim, 1, "vm1", 4};
  vm::Domain vm2{sim, 2, "vm2", 4};
  a.attach_domain(vm1);
  a.attach_domain(vm2);
  for (storage::BlockId blk = 0; blk < a.disk().geometry().block_count; ++blk) {
    a.disk().poke_token(blk, 0xCCCC000000000000ull + blk);
  }
  bool stop = false;
  sim.spawn(writer(sim, vm1, 3, stop));
  sim.spawn(writer(sim, vm2, 4, stop));

  MigrationManager mgr{sim};
  MigrationReport r1, r2;
  int done = 0;
  sim.spawn([](MigrationManager& mgr, vm::Domain& vm, Host& from, Host& to,
               MigrationReport& out, int& done) -> Task<void> {
    out = (co_await mgr.migrate({.domain = &vm, .from = &from, .to = &to})).report;
    ++done;
  }(mgr, vm1, a, b, r1, done));
  sim.spawn([](MigrationManager& mgr, vm::Domain& vm, Host& from, Host& to,
               MigrationReport& out, int& done) -> Task<void> {
    out = (co_await mgr.migrate({.domain = &vm, .from = &from, .to = &to})).report;
    ++done;
  }(mgr, vm2, a, c, r2, done));
  sim.spawn([](Simulator& s, int& done, bool& stop) -> Task<void> {
    while (done < 2) co_await s.delay(10_ms);
    stop = true;
  }(sim, done, stop));
  sim.run();

  EXPECT_TRUE(r1.disk_consistent);
  EXPECT_TRUE(r2.disk_consistent);
  EXPECT_TRUE(b.hosts_domain(vm1));
  EXPECT_TRUE(c.hosts_domain(vm2));
  EXPECT_TRUE(a.domains().empty());
  // Shared source disk: the evacuations contended (each took longer than a
  // lone 64 MiB migration would at 700+ MiB/s).
  EXPECT_GT(r1.total_time() + r2.total_time(), 200_ms);
}

TEST(MultiVmTest, PerDomainImSurvivesConcurrentTraffic) {
  // vm1 round-trips A->B->A while vm2 keeps writing on A the whole time;
  // vm1's incremental return must not be polluted by vm2's writes.
  Simulator sim;
  Host a{sim, "A", Geometry::from_mib(64), fast_disk()};
  Host b{sim, "B", Geometry::from_mib(64), fast_disk()};
  Host::interconnect(a, b, fast_lan());
  vm::Domain vm1{sim, 1, "vm1", 4};
  vm::Domain vm2{sim, 2, "vm2", 4};
  a.attach_domain(vm1);
  a.attach_domain(vm2);
  bool stop = false;
  sim.spawn(writer(sim, vm2, 9, stop));  // vm2 noise throughout

  MigrationManager mgr{sim};
  MigrationReport out, back;
  sim.spawn([](Simulator& sim, MigrationManager& mgr, vm::Domain& vm, Host& a,
               Host& b, MigrationReport& out, MigrationReport& back,
               bool& stop) -> Task<void> {
    out = (co_await mgr.migrate({.domain = &vm, .from = &a, .to = &b})).report;
    // vm1 writes a few blocks at B.
    for (int i = 0; i < 30; ++i) {
      co_await vm.disk_write(BlockRange{static_cast<storage::BlockId>(100 + i), 1});
      co_await sim.delay(200_us);
    }
    back = (co_await mgr.migrate({.domain = &vm, .from = &b, .to = &a})).report;
    stop = true;
  }(sim, mgr, vm1, a, b, out, back, stop));
  sim.run();

  EXPECT_TRUE(back.incremental);
  EXPECT_TRUE(back.disk_consistent);
  // Only vm1's own writes moved back (plus slack), not vm2's stream.
  EXPECT_LE(back.blocks_first_pass, 40u);
}

}  // namespace
}  // namespace vmig::core
