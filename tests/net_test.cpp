#include <gtest/gtest.h>

#include "net/link.hpp"
#include "net/message_stream.hpp"

namespace vmig::net {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::Task;
using sim::TimePoint;
using namespace vmig::sim::literals;

constexpr std::uint64_t kMiBc = 1024 * 1024;

TEST(LinkTest, TransmitTimeIsSerializationPlusLatency) {
  Simulator sim;
  LinkParams p;
  p.bandwidth_mibps = 100.0;
  p.latency = 10_ms;
  Link link{sim, p};
  sim.spawn([](Link& l) -> Task<void> {
    co_await l.transmit(100 * kMiBc);  // 1 s serialize
  }(link));
  sim.run();
  EXPECT_NEAR(sim.now().to_seconds(), 1.010, 1e-6);
  EXPECT_EQ(link.bytes_sent(), 100 * kMiBc);
  EXPECT_EQ(link.messages_sent(), 1u);
}

TEST(LinkTest, BackToBackTransmissionsSerialize) {
  Simulator sim;
  LinkParams p;
  p.bandwidth_mibps = 10.0;
  p.latency = Duration::zero();
  Link link{sim, p};
  TimePoint t1{}, t2{};
  sim.spawn([](Simulator& s, Link& l, TimePoint& a, TimePoint& b) -> Task<void> {
    co_await l.transmit(10 * kMiBc);
    a = s.now();
    co_await l.transmit(10 * kMiBc);
    b = s.now();
  }(sim, link, t1, t2));
  sim.run();
  EXPECT_NEAR(t1.to_seconds(), 1.0, 1e-6);
  EXPECT_NEAR(t2.to_seconds(), 2.0, 1e-6);
}

TEST(LinkTest, ConcurrentSendersShareBandwidth) {
  Simulator sim;
  LinkParams p;
  p.bandwidth_mibps = 10.0;
  p.latency = Duration::zero();
  Link link{sim, p};
  int done = 0;
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Link& l, int& done) -> Task<void> {
      co_await l.transmit(10 * kMiBc);
      ++done;
    }(link, done));
  }
  sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_NEAR(sim.now().to_seconds(), 2.0, 1e-6);  // FIFO: 1s + 1s
}

TEST(LinkTest, UtilizationReflectsIdleTime) {
  Simulator sim;
  LinkParams p;
  p.bandwidth_mibps = 10.0;
  p.latency = Duration::zero();
  Link link{sim, p};
  sim.spawn([](Simulator& s, Link& l) -> Task<void> {
    co_await l.transmit(10 * kMiBc);  // 1 s busy
    co_await s.delay(1_s);            // 1 s idle
  }(sim, link));
  sim.run();
  EXPECT_NEAR(link.utilization(), 0.5, 0.01);
}

TEST(TokenBucketTest, UnlimitedPassesInstantly) {
  Simulator sim;
  TokenBucket tb{sim, 0.0};
  EXPECT_TRUE(tb.unlimited());
  sim.spawn([](TokenBucket& tb) -> Task<void> {
    co_await tb.acquire(1ull << 40);
  }(tb));
  sim.run();
  EXPECT_EQ(sim.now(), TimePoint::origin());
}

TEST(TokenBucketTest, PacesToRate) {
  Simulator sim;
  TokenBucket tb{sim, 10.0, /*burst_mib=*/0.0};
  sim.spawn([](TokenBucket& tb) -> Task<void> {
    for (int i = 0; i < 100; ++i) co_await tb.acquire(kMiBc);  // 100 MiB
  }(tb));
  sim.run();
  EXPECT_NEAR(sim.now().to_seconds(), 10.0, 0.01);
}

TEST(TokenBucketTest, BurstAbsorbsInitialSpike) {
  Simulator sim;
  TokenBucket tb{sim, 1.0, /*burst_mib=*/5.0};
  TimePoint after_burst{};
  sim.spawn([](Simulator& s, TokenBucket& tb, TimePoint& t) -> Task<void> {
    co_await tb.acquire(5 * kMiBc);  // within burst: immediate
    t = s.now();
    co_await tb.acquire(kMiBc);      // now paced at 1 MiB/s
  }(sim, tb, after_burst));
  sim.run();
  EXPECT_EQ(after_burst, TimePoint::origin());
  EXPECT_NEAR(sim.now().to_seconds(), 1.0, 0.01);
}

TEST(TokenBucketTest, ShapedLinkTransmitsAtShapedRate) {
  Simulator sim;
  LinkParams p;
  p.bandwidth_mibps = 100.0;
  p.latency = Duration::zero();
  Link link{sim, p};
  TokenBucket tb{sim, 10.0, /*burst_mib=*/0.0};  // shape to a tenth of the link
  sim.spawn([](Link& l, TokenBucket& tb) -> Task<void> {
    for (int i = 0; i < 20; ++i) co_await l.transmit(kMiBc, &tb);
  }(link, tb));
  sim.run();
  // Sequential loop: each message pays 0.1 s shaping + 0.01 s serialization.
  EXPECT_NEAR(sim.now().to_seconds(), 2.2, 0.05);
}

TEST(TokenBucketTest, RateChangeTakesEffect) {
  Simulator sim;
  TokenBucket tb{sim, 1.0, 0.0};
  sim.spawn([](Simulator& s, TokenBucket& tb) -> Task<void> {
    co_await tb.acquire(kMiBc);  // 1 s at 1 MiB/s
    tb.set_rate_mibps(10.0);
    for (int i = 0; i < 10; ++i) co_await tb.acquire(kMiBc);  // 1 s at 10 MiB/s
    (void)s;
  }(sim, tb));
  sim.run();
  EXPECT_NEAR(sim.now().to_seconds(), 2.0, 0.05);
}

struct TestMsg {
  int id = 0;
  std::uint64_t size = 0;
  std::uint64_t wire_bytes() const { return size; }
};

TEST(MessageStreamTest, DeliversInOrderWithTiming) {
  Simulator sim;
  LinkParams p;
  p.bandwidth_mibps = 1.0;
  p.latency = Duration::zero();
  Link link{sim, p};
  MessageStream<TestMsg> stream{sim, link};
  std::vector<int> got;
  std::vector<double> at;
  sim.spawn([](MessageStream<TestMsg>& st, Simulator& s, std::vector<int>& got,
               std::vector<double>& at) -> Task<void> {
    for (;;) {
      const auto m = co_await st.recv();
      if (!m) break;
      got.push_back(m->id);
      at.push_back(s.now().to_seconds());
    }
  }(stream, sim, got, at));
  sim.spawn([](MessageStream<TestMsg>& st) -> Task<void> {
    co_await st.send(TestMsg{1, kMiBc});
    co_await st.send(TestMsg{2, kMiBc});
    st.close();
  }(stream));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
  ASSERT_EQ(at.size(), 2u);
  EXPECT_NEAR(at[0], 1.0, 1e-6);
  EXPECT_NEAR(at[1], 2.0, 1e-6);
}

TEST(MessageStreamTest, SendOnClosedReturnsFalse) {
  Simulator sim;
  Link link{sim};
  MessageStream<TestMsg> stream{sim, link};
  stream.close();
  bool ok = true;
  sim.spawn([](MessageStream<TestMsg>& st, bool& ok) -> Task<void> {
    ok = co_await st.send(TestMsg{1, 100});
  }(stream, ok));
  sim.run();
  EXPECT_FALSE(ok);
}

TEST(MessageStreamTest, TwoSendersInterleaveFifo) {
  Simulator sim;
  LinkParams p;
  p.bandwidth_mibps = 1.0;
  p.latency = Duration::zero();
  Link link{sim, p};
  MessageStream<TestMsg> stream{sim, link};
  std::vector<int> got;
  sim.spawn([](MessageStream<TestMsg>& st, std::vector<int>& got) -> Task<void> {
    for (int i = 0; i < 4; ++i) {
      const auto m = co_await st.recv();
      if (m) got.push_back(m->id);
    }
  }(stream, got));
  sim.spawn([](MessageStream<TestMsg>& st) -> Task<void> {
    co_await st.send(TestMsg{1, kMiBc / 2});
    co_await st.send(TestMsg{2, kMiBc / 2});
  }(stream));
  sim.spawn([](MessageStream<TestMsg>& st) -> Task<void> {
    co_await st.send(TestMsg{10, kMiBc / 2});
    co_await st.send(TestMsg{20, kMiBc / 2});
  }(stream));
  sim.run();
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], 1);   // FIFO on the link: first spawned sender first
  EXPECT_EQ(got[1], 10);
}

}  // namespace
}  // namespace vmig::net
