// End-to-end exporter tests: a scripted migration on the calibrated testbed
// must produce a deterministic, valid Chrome trace whose phase spans agree
// exactly with the MigrationReport, and whose read-stall histogram
// reconciles with the report's stall totals.

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/report_io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "scenario/testbed.hpp"
#include "workloads/diabolical.hpp"
#include "workloads/kernel_build.hpp"

namespace vmig {
namespace {

/// Minimal recursive-descent JSON acceptor — just enough to prove the
/// exporter emits syntactically valid JSON (objects, arrays, strings with
/// escapes, numbers, literals).
class JsonAcceptor {
 public:
  explicit JsonAcceptor(const std::string& s) : s_{s} {}

  bool accepts() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size() || !std::isxdigit(
                                         static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (std::string{"\"\\/bfnrt"}.find(e) == std::string::npos) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::string l{lit};
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

struct ObsRun {
  std::string trace_json;
  std::string metrics_csv;
  std::string timeline;
  core::MigrationReport report;
  std::vector<obs::Tracer::Track> tracks;
  std::vector<obs::Tracer::Event> events;
  double stall_hist_sum = 0.0;
  std::size_t stall_hist_count = 0;
};

/// One fully-scripted instrumented migration. Everything that feeds the
/// exports derives from sim time, so two calls must agree byte-for-byte.
ObsRun run_instrumented(const std::string& workload_name,
                        bool force_postcopy_residue) {
  sim::Simulator sim;
  scenario::TestbedConfig bed;
  bed.vbd_mib = 128;
  bed.guest_mem_mib = 64;
  scenario::Testbed tb{sim, bed};
  tb.prefill_disk();

  auto cfg = tb.paper_migration_config();
  if (force_postcopy_residue) {
    // Stop the disk pre-copy after its first pass no matter how much is
    // dirty, so post-copy has a real residue, and shape the push sweep so
    // the residue lingers long enough for guest reads to stall on it.
    cfg.disk_max_iterations = 1;
    cfg.disk_residual_target_blocks = 0;
    cfg.rate_limit_mibps = 8.0;
    cfg.rate_limit_postcopy = true;
  }

  obs::Registry registry{sim, sim::Duration::from_seconds(0.5)};
  obs::Tracer tracer{sim};
  tb.attach_obs(&registry);
  registry.start_sampling();
  cfg.obs_registry = &registry;
  cfg.obs_tracer = &tracer;

  std::unique_ptr<workload::Workload> wl;
  if (workload_name == "build") {
    wl = std::make_unique<workload::KernelBuildWorkload>(sim, tb.vm(), 42);
  } else {
    wl = std::make_unique<workload::DiabolicalWorkload>(sim, tb.vm(), 42);
  }

  ObsRun r;
  r.report = tb.run_tpm(wl.get(), sim::Duration::seconds(2),
                        sim::Duration::seconds(2), cfg);
  r.trace_json = obs::chrome_trace_json(tracer);
  r.metrics_csv = core::to_csv(registry);
  r.timeline = obs::timeline_text(tracer);
  r.tracks = tracer.tracks();
  r.events = tracer.snapshot();
  for (const auto& [name, h] : registry.histograms()) {
    if (name == "postcopy.read_stall_ns") {
      r.stall_hist_sum = h->sum();
      r.stall_hist_count = h->count();
    }
  }
  return r;
}

const obs::Tracer::Event* find_span(const ObsRun& r, const std::string& name) {
  for (const auto& e : r.events) {
    if (!e.instant && e.name == name) return &e;
  }
  return nullptr;
}

TEST(ObsExport, ChromeTraceIsByteIdenticalAcrossRuns) {
  const ObsRun a = run_instrumented("build", false);
  const ObsRun b = run_instrumented("build", false);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_csv, b.metrics_csv);
  EXPECT_EQ(a.timeline, b.timeline);
}

TEST(ObsExport, ChromeTraceIsValidJsonWithNestedSpans) {
  const ObsRun r = run_instrumented("build", false);
  EXPECT_TRUE(JsonAcceptor{r.trace_json}.accepts())
      << r.trace_json.substr(0, 400);

  // The kernel-build migration must produce the full span hierarchy.
  for (const char* name :
       {"migration", "preparing", "disk_precopy", "memory_precopy", "freeze",
        "postcopy", "iteration", "mem_round", "mem_residual", "migrate"}) {
    EXPECT_NE(r.trace_json.find("\"name\":\"" + std::string{name} + "\""),
              std::string::npos)
        << "missing span: " << name;
  }
  // Both hosts appear as processes, with per-component threads.
  EXPECT_NE(r.trace_json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(r.trace_json.find("\"thread_name\""), std::string::npos);
}

TEST(ObsExport, MetricsCsvCoversEveryLayer) {
  const ObsRun r = run_instrumented("build", false);
  EXPECT_EQ(r.metrics_csv.rfind("t_seconds,metric,value\n", 0), 0u);
  for (const char* metric :
       {"sim.pending_events", "sim.events_processed",
        // Canonical host-name-derived link metrics...
        "net.source->dest.bytes", "net.source->dest.utilization",
        "net.dest->source.bytes",
        // ...and the legacy fixed names, kept exported as aliases.
        "net.source_to_dest.bytes", "net.source_to_dest.utilization",
        "net.dest_to_source.bytes", "blk.source.write_ops",
        "blk.source.dirty_marks", "blk.dest.read_ops",
        "net.msg.disk_blocks.bytes", "net.msg.control.bytes"}) {
    EXPECT_NE(r.metrics_csv.find(metric), std::string::npos)
        << "missing metric: " << metric;
  }
}

TEST(ObsExport, LegacyLinkAliasTracksCanonicalSeries) {
  const ObsRun r = run_instrumented("build", false);
  // The alias must report the same values as the canonical series, row for
  // row: collect (t, value) pairs per metric from the CSV and compare.
  auto rows_of = [&](const std::string& metric) {
    std::vector<std::string> rows;
    std::size_t pos = 0;
    while ((pos = r.metrics_csv.find("," + metric + ",", pos)) !=
           std::string::npos) {
      const std::size_t line_start = r.metrics_csv.rfind('\n', pos) + 1;
      const std::size_t line_end = r.metrics_csv.find('\n', pos);
      std::string line = r.metrics_csv.substr(line_start, line_end - line_start);
      rows.push_back(line.substr(0, line.find(',')) +
                     line.substr(line.rfind(',')));
      pos = line_end;
    }
    return rows;
  };
  const auto canonical = rows_of("net.source->dest.bytes");
  const auto alias = rows_of("net.source_to_dest.bytes");
  ASSERT_FALSE(canonical.empty());
  EXPECT_EQ(canonical, alias);
}

TEST(ObsExport, PhaseSpansMatchReportExactly) {
  const ObsRun r = run_instrumented("build", false);
  ASSERT_TRUE(r.report.disk_consistent);

  const auto* freeze = find_span(r, "freeze");
  ASSERT_NE(freeze, nullptr);
  EXPECT_EQ(freeze->start.ns(), r.report.suspended.ns());
  EXPECT_EQ(freeze->dur.ns(), r.report.downtime().ns());

  const auto* postcopy = find_span(r, "postcopy");
  ASSERT_NE(postcopy, nullptr);
  EXPECT_EQ(postcopy->start.ns(), r.report.resumed.ns());
  EXPECT_EQ(postcopy->dur.ns(), r.report.postcopy_time().ns());

  const auto* migration = find_span(r, "migration");
  ASSERT_NE(migration, nullptr);
  EXPECT_EQ(migration->start.ns(), r.report.started.ns());
  EXPECT_EQ(migration->dur.ns(), r.report.total_time().ns());

  const auto* disk = find_span(r, "disk_precopy");
  ASSERT_NE(disk, nullptr);
  EXPECT_EQ(disk->start.ns() + disk->dur.ns(),
            r.report.disk_precopy_done.ns());

  // Phase spans tile the migration span: preparing..postcopy ends meet.
  const auto* preparing = find_span(r, "preparing");
  const auto* mem = find_span(r, "memory_precopy");
  ASSERT_NE(preparing, nullptr);
  ASSERT_NE(mem, nullptr);
  EXPECT_EQ(preparing->start.ns() + preparing->dur.ns(), disk->start.ns());
  EXPECT_EQ(disk->start.ns() + disk->dur.ns(), mem->start.ns());
  EXPECT_EQ(mem->start.ns() + mem->dur.ns(), freeze->start.ns());
  EXPECT_EQ(freeze->start.ns() + freeze->dur.ns(), postcopy->start.ns());
}

TEST(ObsExport, ReadStallHistogramReconcilesWithReport) {
  const ObsRun r = run_instrumented("bonnie", true);
  ASSERT_TRUE(r.report.disk_consistent);

  // The Bonnie-style workload against a forced post-copy residue must
  // actually block some guest reads, or this test proves nothing.
  ASSERT_GT(r.report.postcopy_reads_blocked, 0u);

  // Stalls are observed in integer nanoseconds, so the histogram's exact
  // sum equals the report's total to the last nanosecond.
  EXPECT_EQ(r.stall_hist_count, r.report.postcopy_reads_blocked);
  EXPECT_EQ(r.stall_hist_sum,
            static_cast<double>(r.report.postcopy_read_stall_total.ns()));

  // And the trace carries the corresponding read_stall spans + pulls.
  EXPECT_NE(r.trace_json.find("\"name\":\"read_stall\""), std::string::npos);
  EXPECT_NE(r.trace_json.find("\"name\":\"pull_request\""), std::string::npos);
}

TEST(ObsExport, MetricsCsvContainsHistogramSummaryRows) {
  const ObsRun r = run_instrumented("bonnie", true);
  ASSERT_GT(r.stall_hist_count, 0u);

  const auto row_for = [&](const std::string& metric) -> std::string {
    const std::string key = "," + metric + ",";
    const std::size_t pos = r.metrics_csv.find(key);
    EXPECT_NE(pos, std::string::npos) << "missing summary row: " << metric;
    if (pos == std::string::npos) return {};
    const std::size_t start = r.metrics_csv.rfind('\n', pos) + 1;
    const std::size_t end = r.metrics_csv.find('\n', pos);
    return r.metrics_csv.substr(start, end - start);
  };

  // Pinned row format: "<t:%.6f>,<name>.<stat>,<value:%.9g>" — count and sum
  // must round-trip the histogram's exact values.
  char buf[64];
  const std::string count_row = row_for("postcopy.read_stall_ns.count");
  std::snprintf(buf, sizeof buf, ",%.9g",
                static_cast<double>(r.stall_hist_count));
  EXPECT_EQ(count_row.substr(count_row.rfind(',')), buf);
  const std::string sum_row = row_for("postcopy.read_stall_ns.sum");
  std::snprintf(buf, sizeof buf, ",%.9g", r.stall_hist_sum);
  EXPECT_EQ(sum_row.substr(sum_row.rfind(',')), buf);

  // All five stats share one timestamp (the registry's last sample time),
  // printed with exactly six fractional digits.
  const std::string stamp = count_row.substr(0, count_row.find(','));
  const std::size_t dot = stamp.find('.');
  ASSERT_NE(dot, std::string::npos);
  EXPECT_EQ(stamp.size() - dot - 1, 6u);
  for (const char* stat : {".sum", ".p50", ".p95", ".p99"}) {
    const std::string row =
        row_for(std::string{"postcopy.read_stall_ns"} + stat);
    EXPECT_EQ(row.substr(0, row.find(',')), stamp) << stat;
  }
}

/// process name -> pid, parsed from the exporter's process_name metadata.
std::map<std::string, int> pid_map(const std::string& json) {
  std::map<std::string, int> m;
  const std::string meta = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
  for (std::size_t pos = 0; (pos = json.find(meta, pos)) != std::string::npos;
       ++pos) {
    std::size_t p = pos + meta.size();
    int pid = 0;
    while (p < json.size() &&
           std::isdigit(static_cast<unsigned char>(json[p]))) {
      pid = pid * 10 + (json[p++] - '0');
    }
    const std::string key = "\"name\":\"";
    const auto name_at = json.find(key, p);
    const auto name_end = json.find('"', name_at + key.size());
    m.emplace(json.substr(name_at + key.size(),
                          name_end - name_at - key.size()),
              pid);
  }
  return m;
}

TEST(ObsExport, ProcessPidsIndependentOfTrackInsertionOrder) {
  // The same (process, thread) population registered in two different
  // orders must map process names to the same pids: pid assignment is a
  // function of the name set, not of registration order or hash layout.
  sim::Simulator sim;
  obs::Tracer a{sim};
  const auto a_tpm = a.track("source", "tpm");
  const auto a_pc = a.track("dest", "postcopy");
  const auto a_blk = a.track("source", "blk");
  obs::Tracer b{sim};
  const auto b_blk = b.track("source", "blk");
  const auto b_pc = b.track("dest", "postcopy");
  const auto b_tpm = b.track("source", "tpm");
  for (auto* t : {&a, &b}) {
    t->instant(t == &a ? a_tpm : b_tpm, "begin");
    t->instant(t == &a ? a_pc : b_pc, "pull");
    t->instant(t == &a ? a_blk : b_blk, "write");
  }

  const std::string ja = obs::chrome_trace_json(a);
  const std::string jb = obs::chrome_trace_json(b);
  ASSERT_TRUE(JsonAcceptor{ja}.accepts());
  ASSERT_TRUE(JsonAcceptor{jb}.accepts());

  const auto pa = pid_map(ja);
  const auto pb = pid_map(jb);
  ASSERT_EQ(pa.size(), 2u);
  EXPECT_EQ(pa, pb);
  // Lexicographic rank: "dest" < "source".
  EXPECT_EQ(pa.at("dest"), 1);
  EXPECT_EQ(pa.at("source"), 2);
}

TEST(ObsExport, TimelineUsesSharedLogStamp) {
  const ObsRun r = run_instrumented("build", false);
  // Every timeline line starts with the Log::stamp() prefix "[  ...s]".
  ASSERT_FALSE(r.timeline.empty());
  EXPECT_EQ(r.timeline.front(), '[');
  EXPECT_NE(r.timeline.find("source/tpm"), std::string::npos);
  EXPECT_NE(r.timeline.find("dest/postcopy"), std::string::npos);
}

}  // namespace
}  // namespace vmig
