// Unit tests for the obs metrics registry, histogram, and span tracer.

#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "simcore/simulator.hpp"

namespace vmig::obs {
namespace {

TEST(Counter, AccumulatesAndDefaultsToOne) {
  Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.add();
  c.add(41.0);
  EXPECT_EQ(c.value(), 42.0);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(10.0);
  g.add(-3.0);
  EXPECT_EQ(g.value(), 7.0);
}

TEST(Histogram, ExactMomentsOverUniformRange) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.observe(static_cast<double>(v));
  EXPECT_EQ(h.count(), 1000u);
  // Integer-valued doubles sum exactly: 1+2+...+1000.
  EXPECT_EQ(h.sum(), 500500.0);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
}

TEST(Histogram, QuantileWithinBucketResolution) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.observe(static_cast<double>(v));
  // True p50 is 500; the log2 buckets bound the error to one power of two,
  // so the estimate must land in [256, 512) ∪ {exact interpolation} — allow
  // the full covering bucket.
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1000.0);
}

TEST(Histogram, QuantilesAreMonotonicAndClamped) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.observe(static_cast<double>(v));
  double prev = 0.0;
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double val = h.quantile(q);
    EXPECT_GE(val, prev) << "quantile not monotonic at q=" << q;
    EXPECT_GE(val, h.min());
    EXPECT_LE(val, h.max());
    prev = val;
  }
}

TEST(Histogram, SingleValueReportsItselfAtEveryQuantile) {
  Histogram h;
  for (int i = 0; i < 5; ++i) h.observe(42.0);
  EXPECT_EQ(h.min(), 42.0);
  EXPECT_EQ(h.max(), 42.0);
  EXPECT_EQ(h.quantile(0.0), 42.0);
  EXPECT_EQ(h.quantile(0.5), 42.0);
  EXPECT_EQ(h.quantile(1.0), 42.0);
}

TEST(Histogram, ZeroAndEmptyAreWellDefined) {
  Histogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  Histogram h;
  h.observe(0.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Registry, InstrumentsAreStableAndTyped) {
  sim::Simulator sim;
  Registry reg{sim};
  Counter& c = reg.counter("x.bytes");
  EXPECT_EQ(&c, &reg.counter("x.bytes"));
  EXPECT_EQ(reg.instrument_count(), 1u);
  // Re-requesting a name as a different kind is a programming error.
  EXPECT_THROW(reg.gauge("x.bytes"), std::logic_error);
}

TEST(Registry, CounterSamplesAsRate) {
  sim::Simulator sim;
  Registry reg{sim};
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  reg.probe("p", [] { return 7.0; });

  reg.sample_now();  // t=0: first counter sample has no interval -> 0
  c.add(100.0);
  g.set(3.0);
  sim.spawn(
      [](sim::Simulator& s) -> sim::Task<void> {
        co_await s.delay(sim::Duration::seconds(2));
      }(sim),
      "advance");
  sim.run();
  reg.sample_now();  // t=2: rate = 100 / 2s

  const auto series = reg.series();
  ASSERT_EQ(series.size(), 3u);  // registration order: c, g, p
  EXPECT_EQ(series[0].name, "c");
  ASSERT_EQ(series[0].data->size(), 2u);
  EXPECT_EQ(series[0].data->points()[0].value, 0.0);
  EXPECT_DOUBLE_EQ(series[0].data->points()[1].value, 50.0);
  EXPECT_EQ(series[1].name, "g");
  EXPECT_EQ(series[1].data->points()[1].value, 3.0);
  EXPECT_EQ(series[2].name, "p");
  EXPECT_EQ(series[2].data->points()[1].value, 7.0);
}

TEST(Registry, SamplerParksWhenQueueDrains) {
  sim::Simulator sim;
  Registry reg{sim, sim::Duration::seconds(1)};
  reg.counter("c");
  sim.spawn(
      [](sim::Simulator& s) -> sim::Task<void> {
        co_await s.delay(sim::Duration::from_seconds(3.5));
      }(sim),
      "workload");
  reg.start_sampling();
  EXPECT_TRUE(reg.sampling());
  // Must terminate: the sampler re-arms only while other events are pending.
  sim.run();
  EXPECT_FALSE(reg.sampling());
  const auto series = reg.series();
  ASSERT_EQ(series.size(), 1u);
  // Samples at t=0 (start), 1, 2, 3, and the parking tick at 4.
  EXPECT_EQ(series[0].data->size(), 5u);
  EXPECT_EQ(series[0].data->points().back().t.ns(),
            sim::Duration::seconds(4).ns());
}

TEST(Registry, RejectsNonPositiveSampleInterval) {
  sim::Simulator sim;
  // interval 0 would re-arm the tick at the same instant forever.
  Registry zero{sim, sim::Duration::nanos(0)};
  EXPECT_THROW(zero.start_sampling(), std::invalid_argument);
  Registry neg{sim, sim::Duration::nanos(-1)};
  EXPECT_THROW(neg.start_sampling(), std::invalid_argument);
  EXPECT_FALSE(neg.sampling());
}

TEST(Registry, HistogramsListedButNotSampled) {
  sim::Simulator sim;
  Registry reg{sim};
  reg.histogram("h").observe(5.0);
  reg.sample_now();
  EXPECT_TRUE(reg.series().empty());
  const auto hists = reg.histograms();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].first, "h");
  EXPECT_EQ(hists[0].second->count(), 1u);
}

TEST(Registry, HistogramAliasSharesCanonicalInstrument) {
  sim::Simulator sim;
  Registry reg{sim};
  Histogram& h = reg.histogram("postcopy.read_stall_ns");
  h.observe(100.0);
  // Aliasing a histogram is supported: the old name surfaces the same
  // underlying instrument (a rename keeps downstream dashboards working).
  reg.alias("legacy.stall_ns", "postcopy.read_stall_ns");
  h.observe(300.0);

  const auto hists = reg.histograms();
  ASSERT_EQ(hists.size(), 2u);  // registration order: canonical, alias
  EXPECT_EQ(hists[0].first, "postcopy.read_stall_ns");
  EXPECT_EQ(hists[1].first, "legacy.stall_ns");
  EXPECT_EQ(hists[0].second, hists[1].second);
  EXPECT_EQ(hists[1].second->count(), 2u);
  EXPECT_EQ(hists[1].second->sum(), 400.0);

  // Histogram aliases are not time series: sampling must neither emit
  // points for them nor throw.
  reg.sample_now();
  for (const auto& s : reg.series()) {
    EXPECT_NE(s.name, "legacy.stall_ns");
    EXPECT_NE(s.name, "postcopy.read_stall_ns");
  }
  // Aliasing an unknown canonical name is still a programming error.
  EXPECT_THROW(reg.alias("x", "no.such.metric"), std::logic_error);
}

TEST(Tracer, RingBufferDropsOldest) {
  sim::Simulator sim;
  Tracer tracer{sim, /*capacity=*/4};
  const TrackId t = tracer.track("host", "comp");
  for (int i = 0; i < 6; ++i) {
    // Built in two steps: `"e" + std::to_string(i)` trips GCC 12's
    // -Wrestrict false positive (PR105651) under -O2.
    std::string name{"e"};
    name += std::to_string(i);
    tracer.instant(t, std::move(name));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "e2");  // oldest surviving
  EXPECT_EQ(events.back().name, "e5");
}

TEST(Tracer, TracksDeduplicate) {
  sim::Simulator sim;
  Tracer tracer{sim};
  const TrackId a = tracer.track("h", "x");
  const TrackId b = tracer.track("h", "y");
  EXPECT_NE(a, b);
  EXPECT_EQ(tracer.track("h", "x"), a);
  EXPECT_EQ(tracer.tracks().size(), 2u);
}

TEST(Tracer, CompleteWithExplicitEnd) {
  sim::Simulator sim;
  Tracer tracer{sim};
  const TrackId t = tracer.track("h", "x");
  const sim::TimePoint start = sim::TimePoint::origin() + sim::Duration::seconds(1);
  const sim::TimePoint end = start + sim::Duration::millis(250);
  tracer.complete(t, start, end, "span");
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start.ns(), start.ns());
  EXPECT_EQ(events[0].dur.ns(), sim::Duration::millis(250).ns());
}

TEST(Tracer, NullSpanIsNoOp) {
  // A Span over a null tracer must be safely inert (the disabled path).
  Span s{nullptr, 0, "nothing"};
  s.set_args("\"ignored\": 1");
  s.end();
}

TEST(Tracer, SpanRecordsOnEnd) {
  sim::Simulator sim;
  Tracer tracer{sim};
  const TrackId t = tracer.track("h", "x");
  {
    Span s{&tracer, t, "scoped"};
    EXPECT_EQ(tracer.size(), 0u);  // nothing until the span ends
  }
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.snapshot()[0].name, "scoped");
}

}  // namespace
}  // namespace vmig::obs
