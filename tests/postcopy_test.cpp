// Direct protocol-level tests of the post-copy engine: each case mirrors a
// line of the paper's §IV-A-3 pseudocode (destination intercept rules and
// the received-block algorithm).

#include <gtest/gtest.h>

#include <memory>

#include "core/post_copy.hpp"
#include "simcore/rng.hpp"

namespace vmig::core {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::Task;
using storage::BlockRange;
using storage::Geometry;
using namespace vmig::sim::literals;

storage::DiskModelParams fast_disk() {
  storage::DiskModelParams p;
  p.seq_read_mbps = 1000.0;
  p.seq_write_mbps = 1000.0;
  p.seek = Duration::zero();
  p.request_overhead = Duration::zero();
  return p;
}

/// A destination-side harness: disk, reverse stream (pull requests land in
/// our hands), and a PostCopyDestination with a chosen dirty set.
struct DestRig {
  DestRig(Simulator& sim, std::uint64_t blocks,
          std::initializer_list<storage::BlockId> dirty, bool pull = true)
      : disk{sim, Geometry::from_blocks(blocks), fast_disk()},
        rev_link{sim},
        rev{sim, rev_link} {
    DirtyBitmap bm{BitmapKind::kFlat, blocks};
    for (const auto b : dirty) bm.set(b);
    engine = std::make_unique<PostCopyDestination>(sim, disk, std::move(bm),
                                                   /*migrated=*/7, rev, pull);
  }

  DiskBlocksMsg make_block(storage::BlockId b, bool pulled,
                           storage::ContentToken tok = 0xCAFE) {
    return DiskBlocksMsg{BlockRange{b, 1}, {tok}, 4096, pulled};
  }

  storage::VirtualDisk disk;
  net::Link rev_link;
  MigStream rev;
  std::unique_ptr<PostCopyDestination> engine;
};

TEST(PostCopyDestinationTest, OtherDomainsPassThrough) {
  Simulator sim;
  DestRig rig{sim, 64, {5}};
  bool done = false;
  sim.spawn([](DestRig& rig, bool& done) -> Task<void> {
    // Line 3: R.VM != migrated VM — submit directly, even to a dirty block.
    co_await rig.engine->on_request(/*domain=*/2, storage::IoOp::kRead,
                                    BlockRange{5, 1});
    done = true;
  }(rig, done));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.engine->stats().pull_requests, 0u);
  EXPECT_TRUE(rig.engine->transferred().test(5));  // untouched
}

TEST(PostCopyDestinationTest, WriteClearsBitWithoutPulling) {
  Simulator sim;
  DestRig rig{sim, 64, {5, 6}};
  bool done = false;
  sim.spawn([](DestRig& rig, bool& done) -> Task<void> {
    // Lines 5-10: a write to a dirty block overwrites the whole block.
    co_await rig.engine->on_request(7, storage::IoOp::kWrite, BlockRange{5, 1});
    done = true;
  }(rig, done));
  sim.run();
  EXPECT_TRUE(done);  // write proceeded immediately
  EXPECT_FALSE(rig.engine->transferred().test(5));
  EXPECT_TRUE(rig.engine->transferred().test(6));
  EXPECT_EQ(rig.engine->stats().pull_requests, 0u);
  EXPECT_FALSE(rig.engine->complete());
}

TEST(PostCopyDestinationTest, ReadOfCleanBlockSubmitsDirectly) {
  Simulator sim;
  DestRig rig{sim, 64, {5}};
  bool done = false;
  sim.spawn([](DestRig& rig, bool& done) -> Task<void> {
    // Lines 11-12: clean block — no pull, no wait.
    co_await rig.engine->on_request(7, storage::IoOp::kRead, BlockRange{10, 2});
    done = true;
  }(rig, done));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.engine->stats().pull_requests, 0u);
  EXPECT_EQ(rig.engine->reads_blocked(), 0u);
}

TEST(PostCopyDestinationTest, ReadOfDirtyBlockPullsAndWaits) {
  Simulator sim;
  DestRig rig{sim, 64, {5}};
  bool done = false;
  sim.spawn([](DestRig& rig, bool& done) -> Task<void> {
    // Line 13: dirty read — send a pull request, park in the pending list.
    co_await rig.engine->on_request(7, storage::IoOp::kRead, BlockRange{5, 1});
    done = true;
  }(rig, done));
  sim.run();
  EXPECT_FALSE(done);  // parked
  EXPECT_EQ(rig.engine->stats().pull_requests, 1u);
  // The pull request is on the reverse stream.
  const auto req = rig.rev.try_recv();
  ASSERT_TRUE(req.has_value());
  const auto* pull = req->get_if<PullRequestMsg>();
  ASSERT_NE(pull, nullptr);
  EXPECT_EQ(pull->block, 5u);

  // Deliver the block: the read must be released (receive lines 6-11).
  sim.spawn([](DestRig& rig) -> Task<void> {
    co_await rig.engine->on_block_received(rig.make_block(5, /*pulled=*/true));
  }(rig));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(rig.engine->transferred().test(5));
  EXPECT_EQ(rig.engine->stats().blocks_pulled, 1u);
  EXPECT_TRUE(rig.engine->complete());
  EXPECT_EQ(rig.disk.token(5), 0xCAFEu);
  EXPECT_GT(rig.engine->max_read_stall(), Duration::zero());
}

TEST(PostCopyDestinationTest, DuplicatePullRequestsAreDeduplicated) {
  Simulator sim;
  DestRig rig{sim, 64, {5}};
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](DestRig& rig, int& done) -> Task<void> {
      co_await rig.engine->on_request(7, storage::IoOp::kRead, BlockRange{5, 1});
      ++done;
    }(rig, done));
  }
  sim.run();
  EXPECT_EQ(done, 0);
  EXPECT_EQ(rig.engine->stats().pull_requests, 1u);  // one wire request
  sim.spawn([](DestRig& rig) -> Task<void> {
    co_await rig.engine->on_block_received(rig.make_block(5, true));
  }(rig));
  sim.run();
  EXPECT_EQ(done, 3);  // all three readers released
}

TEST(PostCopyDestinationTest, PushedBlockDroppedAfterLocalOverwrite) {
  Simulator sim;
  DestRig rig{sim, 64, {5}};
  sim.spawn([](DestRig& rig) -> Task<void> {
    // Guest overwrites the block first...
    co_await rig.engine->on_request(7, storage::IoOp::kWrite, BlockRange{5, 1});
    co_await rig.disk.write(BlockRange{5, 1});  // the actual write
    // ...then the stale push arrives: receive lines 2-3 drop it.
    co_await rig.engine->on_block_received(rig.make_block(5, false, 0xDEAD));
  }(rig));
  sim.run();
  EXPECT_EQ(rig.engine->stats().blocks_dropped, 1u);
  EXPECT_EQ(rig.engine->stats().blocks_pushed, 0u);
  EXPECT_NE(rig.disk.token(5), 0xDEADu);  // local write won
  EXPECT_TRUE(rig.engine->complete());
}

TEST(PostCopyDestinationTest, OverwriteReleasesPendingRead) {
  // A read parked on a pull must be released when a concurrent guest write
  // supersedes the block (the data it will read is the fresh local write).
  Simulator sim;
  DestRig rig{sim, 64, {5}};
  bool read_done = false;
  sim.spawn([](DestRig& rig, bool& done) -> Task<void> {
    co_await rig.engine->on_request(7, storage::IoOp::kRead, BlockRange{5, 1});
    done = true;
  }(rig, read_done));
  sim.run();
  EXPECT_FALSE(read_done);
  sim.spawn([](DestRig& rig) -> Task<void> {
    co_await rig.engine->on_request(7, storage::IoOp::kWrite, BlockRange{5, 1});
  }(rig));
  sim.run();
  EXPECT_TRUE(read_done);
  EXPECT_TRUE(rig.engine->complete());
}

TEST(PostCopyDestinationTest, PartiallyDirtyRangeAppliesOnlyDirtyRuns) {
  Simulator sim;
  DestRig rig{sim, 64, {10, 11, 13}};
  // Block 12 was overwritten locally (clean); a push covering 10-13 arrives.
  sim.spawn([](DestRig& rig) -> Task<void> {
    DiskBlocksMsg msg{BlockRange{10, 4},
                      {0xA0, 0xA1, 0xA2, 0xA3},
                      4096,
                      /*pulled=*/false};
    co_await rig.engine->on_block_received(msg);
  }(rig));
  sim.run();
  EXPECT_EQ(rig.engine->stats().blocks_pushed, 3u);
  EXPECT_EQ(rig.engine->stats().blocks_dropped, 1u);
  EXPECT_EQ(rig.disk.token(10), 0xA0u);
  EXPECT_EQ(rig.disk.token(11), 0xA1u);
  EXPECT_NE(rig.disk.token(12), 0xA2u);  // dropped
  EXPECT_EQ(rig.disk.token(13), 0xA3u);
  EXPECT_TRUE(rig.engine->complete());
}

TEST(PostCopyDestinationTest, EmptyResidueIsCompleteImmediately) {
  Simulator sim;
  DestRig rig{sim, 64, {}};
  EXPECT_TRUE(rig.engine->complete());
  EXPECT_TRUE(rig.engine->done_gate().is_open());
}

TEST(PostCopyDestinationTest, DoneGateOpensOnLastBlock) {
  Simulator sim;
  DestRig rig{sim, 64, {1, 2}};
  bool synced = false;
  sim.spawn([](DestRig& rig, bool& synced) -> Task<void> {
    co_await rig.engine->done_gate().wait();
    synced = true;
  }(rig, synced));
  sim.spawn([](DestRig& rig) -> Task<void> {
    co_await rig.engine->on_block_received(rig.make_block(1, false));
    co_await rig.engine->on_block_received(rig.make_block(2, false));
  }(rig));
  sim.run();
  EXPECT_TRUE(synced);
}

TEST(PostCopyDestinationTest, PullDisabledWaitsForPush) {
  Simulator sim;
  DestRig rig{sim, 64, {5}, /*pull=*/false};
  bool done = false;
  sim.spawn([](DestRig& rig, bool& done) -> Task<void> {
    co_await rig.engine->on_request(7, storage::IoOp::kRead, BlockRange{5, 1});
    done = true;
  }(rig, done));
  sim.run();
  EXPECT_FALSE(done);
  EXPECT_EQ(rig.engine->stats().pull_requests, 0u);  // no pull sent
  sim.spawn([](DestRig& rig) -> Task<void> {
    co_await rig.engine->on_block_received(rig.make_block(5, false));
  }(rig));
  sim.run();
  EXPECT_TRUE(done);  // push released it
}

TEST(PostCopyDestinationTest, ForceCompleteInstallsTruthAndReleases) {
  Simulator sim;
  DestRig rig{sim, 64, {3, 4}};
  storage::VirtualDisk truth{sim, Geometry::from_blocks(64), fast_disk()};
  truth.poke_token(3, 111);
  truth.poke_token(4, 222);
  bool done = false;
  sim.spawn([](DestRig& rig, bool& done) -> Task<void> {
    co_await rig.engine->on_request(7, storage::IoOp::kRead, BlockRange{3, 1});
    done = true;
  }(rig, done));
  sim.run();
  EXPECT_FALSE(done);
  rig.engine->force_complete(truth);
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(rig.engine->complete());
  EXPECT_EQ(rig.disk.token(3), 111u);
  EXPECT_EQ(rig.disk.token(4), 222u);
}

/// Source-side harness: disk with content, forward stream we can drain.
struct SrcRig {
  SrcRig(Simulator& sim, std::uint64_t blocks,
         std::initializer_list<storage::BlockId> remaining,
         std::uint32_t chunk = 4)
      : disk{sim, Geometry::from_blocks(blocks), fast_disk()},
        fwd_link{sim},
        fwd{sim, fwd_link} {
    for (storage::BlockId b = 0; b < blocks; ++b) disk.poke_token(b, 0x9900 + b);
    DirtyBitmap bm{BitmapKind::kFlat, blocks};
    for (const auto b : remaining) bm.set(b);
    engine = std::make_unique<PostCopySource>(sim, disk, std::move(bm), fwd,
                                              chunk, nullptr);
  }

  storage::VirtualDisk disk;
  net::Link fwd_link;
  MigStream fwd;
  std::unique_ptr<PostCopySource> engine;
};

TEST(PostCopySourceTest, PushesEverythingThenAnnouncesCompletion) {
  Simulator sim;
  SrcRig rig{sim, 64, {1, 2, 3, 10, 11, 40}};
  sim.spawn(rig.engine->run(), "pusher");
  sim.run();
  EXPECT_TRUE(rig.engine->finished());
  EXPECT_EQ(rig.engine->stats().blocks_pushed, 6u);
  // Drain the stream: pushes (coalesced into runs) then kPushComplete.
  std::uint64_t blocks = 0;
  bool complete_marker = false;
  while (auto m = rig.fwd.try_recv()) {
    if (const auto* d = m->get_if<DiskBlocksMsg>()) {
      blocks += d->range.count;
      EXPECT_FALSE(d->pull_response);
    } else if (const auto* c = m->get_if<ControlMsg>()) {
      EXPECT_EQ(c->kind, Control::kPushComplete);
      complete_marker = true;
    }
  }
  EXPECT_EQ(blocks, 6u);
  EXPECT_TRUE(complete_marker);
}

TEST(PostCopySourceTest, PullServedPreferentiallyAsPullResponse) {
  Simulator sim;
  SrcRig rig{sim, 4096, {}, /*chunk=*/4};
  // Large contiguous residue so the sweep takes a while.
  for (storage::BlockId b = 0; b < 4096; ++b) {
    // re-init remaining bitmap through a fresh engine
  }
  SrcRig rig2{sim, 4096, {}, 4};
  DirtyBitmap bm{BitmapKind::kFlat, 4096};
  bm.set_range(0, 4096);
  PostCopySource src{sim, rig2.disk, std::move(bm), rig2.fwd, 4, nullptr};
  src.enqueue_pull(4000);  // far from the sweep cursor
  sim.spawn(src.run(), "pusher");
  sim.run_for(1_ms);
  // The very first message should be the pull response for 4000.
  const auto first = rig2.fwd.try_recv();
  ASSERT_TRUE(first.has_value());
  const auto* d = first->get_if<DiskBlocksMsg>();
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->pull_response);
  EXPECT_EQ(d->range.start, 4000u);
  sim.run();
  EXPECT_TRUE(src.finished());
  EXPECT_EQ(src.stats().blocks_pulled, 1u);
  EXPECT_EQ(src.stats().blocks_pushed + src.stats().blocks_pulled, 4096u);
}

TEST(PostCopySourceTest, PullAfterPushCompleteIsServedAsRecovery) {
  Simulator sim;
  SrcRig rig{sim, 64, {5}};
  sim.spawn(rig.engine->run(), "pusher");
  sim.run();  // block 5 pushed; push-complete announced
  EXPECT_TRUE(rig.engine->finished());
  // A pull arriving *after* the sweep means the destination never saw the
  // push (lost in flight): the source must serve it again, not ignore it.
  rig.engine->enqueue_pull(5);
  sim.run();
  EXPECT_EQ(rig.engine->stats().blocks_pulled, 1u);
  rig.engine->request_stop();
  sim.run();
}

TEST(PostCopySourceTest, RequestStopEndsPushEarly) {
  Simulator sim;
  SrcRig rig{sim, 4096, {}};
  DirtyBitmap bm{BitmapKind::kFlat, 4096};
  bm.set_range(0, 4096);
  PostCopySource src{sim, rig.disk, std::move(bm), rig.fwd, 4, nullptr};
  sim.spawn(src.run(), "pusher");
  sim.run_for(100_us);
  src.request_stop();
  sim.run();
  EXPECT_TRUE(src.finished());
  EXPECT_LT(src.stats().blocks_pushed, 4096u);
}

TEST(PostCopySourceTest, ChunksCoalesceContiguousRuns) {
  Simulator sim;
  SrcRig rig{sim, 64, {10, 11, 12, 13, 14, 15, 16, 17}, /*chunk=*/4};
  sim.spawn(rig.engine->run(), "pusher");
  sim.run();
  // 8 contiguous blocks at chunk 4 => exactly two push messages.
  int push_msgs = 0;
  while (auto m = rig.fwd.try_recv()) {
    if (m->is<DiskBlocksMsg>()) ++push_msgs;
  }
  EXPECT_EQ(push_msgs, 2);
}

}  // namespace
}  // namespace vmig::core
