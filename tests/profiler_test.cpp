// Self-profiler tests (docs/OBSERVABILITY.md "Self-profiling"):
//   - scope accounting: calls, inclusive/exclusive nesting, event counts;
//   - probes are no-ops while no profiler is active;
//   - collapsed-stack export: path structure in deterministic first-seen
//     order (wall-clock sample values vary run to run by design);
//   - allocation attribution to the innermost open scope;
//   - the determinism contract: profiling ON vs OFF leaves every simulated
//     artifact byte-identical — report JSON, chrome trace, flight record —
//     including a chaos-seeded fault run (profiling must observe, never
//     perturb).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/orchestrator.hpp"
#include "core/migration_manager.hpp"
#include "core/report_io.hpp"
#include "fault/fault_spec.hpp"
#include "fault/injector.hpp"
#include "obs/export.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/tracer.hpp"
#include "scenario/cluster_testbed.hpp"
#include "scenario/testbed.hpp"
#include "workloads/diabolical.hpp"
#include "workloads/kernel_build.hpp"

namespace vmig {
namespace {

using namespace vmig::sim::literals;
using obs::ProfCategory;
using obs::Profiler;
using obs::ProfScope;

// --------------------------------------------------------- scope accounting

TEST(ProfilerTest, ScopeAccountingCallsEventsAndNesting) {
  Profiler p;
  p.activate();
  {
    ProfScope outer{ProfCategory::kSimDispatch};
    obs::prof_count(ProfCategory::kSimDispatch);
    {
      ProfScope inner{ProfCategory::kBitmapScan};
      obs::prof_count(ProfCategory::kBitmapScan, 128);
    }
    {
      ProfScope inner{ProfCategory::kBitmapScan};
      obs::prof_count(ProfCategory::kBitmapScan, 64);
    }
  }
  Profiler::deactivate();

  const auto& outer = p.stats(ProfCategory::kSimDispatch);
  const auto& inner = p.stats(ProfCategory::kBitmapScan);
  EXPECT_EQ(outer.calls, 1u);
  EXPECT_EQ(outer.events, 1u);
  EXPECT_EQ(inner.calls, 2u);
  EXPECT_EQ(inner.events, 192u);
  // Exclusive excludes children; inclusive contains them.
  EXPECT_GE(outer.inclusive_ns, outer.exclusive_ns);
  EXPECT_GE(outer.inclusive_ns, inner.inclusive_ns);
  EXPECT_EQ(inner.inclusive_ns, inner.exclusive_ns);  // leaf scopes
  // Only the root scope contributes to the total.
  EXPECT_EQ(p.total_scoped_ns(), outer.inclusive_ns);
  EXPECT_EQ(p.open_scopes(), 0u);
}

TEST(ProfilerTest, ProbesAreNoOpsWithoutAnActiveProfiler) {
  ASSERT_EQ(Profiler::active(), nullptr);
  {
    ProfScope s{ProfCategory::kBitmapMark};
    obs::prof_count(ProfCategory::kBitmapMark, 1000);
  }
  Profiler p;  // never activated
  EXPECT_EQ(p.stats(ProfCategory::kBitmapMark).calls, 0u);
  EXPECT_EQ(p.total_scoped_ns(), 0u);
}

TEST(ProfilerTest, DeactivateStopsCollection) {
  Profiler p;
  p.activate();
  { ProfScope s{ProfCategory::kDiskIteration}; }
  Profiler::deactivate();
  { ProfScope s{ProfCategory::kDiskIteration}; }
  EXPECT_EQ(p.stats(ProfCategory::kDiskIteration).calls, 1u);
}

// ------------------------------------------------------------------ exports

TEST(ProfilerTest, CollapsedStacksFollowFirstSeenPathOrder) {
  Profiler p;
  p.activate();
  {
    ProfScope a{ProfCategory::kSimDispatch};
    { ProfScope b{ProfCategory::kBitmapScan}; }
    { ProfScope c{ProfCategory::kPostCopyPull}; }
    { ProfScope b2{ProfCategory::kBitmapScan}; }  // existing path, no new line
  }
  { ProfScope top{ProfCategory::kOrchestratorTick}; }
  Profiler::deactivate();

  std::istringstream in{p.collapsed()};
  std::vector<std::string> paths;
  std::string line;
  while (std::getline(in, line)) {
    const auto sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    paths.push_back(line.substr(0, sp));
    // The sample value is a plain non-negative integer (nanoseconds).
    EXPECT_NE(line.substr(sp + 1).find_first_of("0123456789"),
              std::string::npos)
        << line;
  }
  const std::vector<std::string> want{
      "sim_dispatch",
      "sim_dispatch;bitmap_scan",
      "sim_dispatch;postcopy_pull",
      "orchestrator_tick",
  };
  EXPECT_EQ(paths, want);
}

TEST(ProfilerTest, FlatMetricsCarryPerCategoryKeys) {
  Profiler p;
  p.activate();
  {
    ProfScope s{ProfCategory::kRecorderEmit};
    obs::prof_count(ProfCategory::kRecorderEmit, 7);
  }
  Profiler::deactivate();

  bool saw_calls = false, saw_events = false, saw_total = false;
  for (const auto& [k, v] : p.flat_metrics()) {
    if (k == "prof.recorder_emit.calls") {
      saw_calls = true;
      EXPECT_EQ(v, 1.0);
    }
    if (k == "prof.recorder_emit.events") {
      saw_events = true;
      EXPECT_EQ(v, 7.0);
    }
    if (k == "prof.total_scoped_ms") saw_total = true;
  }
  EXPECT_TRUE(saw_calls && saw_events && saw_total);
  EXPECT_NE(p.table().find("recorder_emit"), std::string::npos);
}

TEST(ProfilerTest, AllocationsAttributeToInnermostOpenScope) {
  Profiler p;
  p.activate();
  {
    ProfScope s{ProfCategory::kOrchestratorTick};
    std::vector<int> v;
    v.reserve(1024);  // one heap allocation inside the scope
  }
  Profiler::deactivate();
  const auto& in_scope = p.stats(ProfCategory::kOrchestratorTick);
  EXPECT_GE(in_scope.allocs, 1u);
  EXPECT_GE(in_scope.alloc_bytes, 1024u * sizeof(int));
}

// ----------------------------------------------- determinism A/B (tentpole)

struct Artifacts {
  std::string report_json;
  std::string chrome_trace;
  std::string flight_jsonl;
};

/// One instrumented single-host TPM migration with tracer + flight recorder
/// attached (the `vmig_sim --trace --flight-record` wiring), optionally
/// self-profiled. Returns every serialized artifact.
Artifacts run_instrumented(bool profiled) {
  std::unique_ptr<Profiler> prof;
  if (profiled) {
    prof = std::make_unique<Profiler>();
    prof->activate();
  }

  sim::Simulator sim;
  scenario::TestbedConfig bed;
  bed.vbd_mib = 128;
  bed.guest_mem_mib = 64;
  scenario::Testbed tb{sim, bed};
  tb.prefill_disk();

  obs::Tracer tracer{sim};
  obs::FlightRecorder rec;
  auto cfg = tb.paper_migration_config();
  cfg.obs_tracer = &tracer;
  cfg.obs_recorder = &rec;

  workload::KernelBuildWorkload wl{sim, tb.vm(), 42};
  const core::MigrationReport rep = tb.run_tpm(
      &wl, sim::Duration::seconds(2), sim::Duration::seconds(2), cfg);

  Artifacts a;
  a.report_json = core::to_json(rep);
  a.chrome_trace = obs::chrome_trace_json(tracer);
  std::ostringstream out;
  obs::write_flight_record(out, rec);
  a.flight_jsonl = out.str();

  if (profiled) {
    Profiler::deactivate();
    // The run must actually have been observed, or the A/B proves nothing.
    EXPECT_GT(prof->stats(ProfCategory::kSimDispatch).calls, 0u);
    EXPECT_GT(prof->stats(ProfCategory::kBitmapScan).events, 0u);
    EXPECT_GT(prof->total_scoped_ns(), 0u);
  }
  return a;
}

TEST(ProfilerDeterminism, ProfilingLeavesAllArtifactsByteIdentical) {
  const Artifacts off = run_instrumented(false);
  const Artifacts on = run_instrumented(true);
  EXPECT_EQ(off.report_json, on.report_json);
  EXPECT_EQ(off.chrome_trace, on.chrome_trace);
  EXPECT_EQ(off.flight_jsonl, on.flight_jsonl);
  EXPECT_FALSE(off.report_json.empty());
  EXPECT_FALSE(off.chrome_trace.empty());
  EXPECT_FALSE(off.flight_jsonl.empty());
}

/// Chaos seed 3 (the fault-matrix shape flight_recorder_test replays): a
/// full evacuation under a mixed fault schedule with aborts, retries and
/// resumes — the harshest path the profiler's probes sit on.
std::string run_chaos(bool profiled, std::uint64_t seed) {
  std::unique_ptr<Profiler> prof;
  if (profiled) {
    prof = std::make_unique<Profiler>();
    prof->activate();
  }

  sim::Simulator sim;
  scenario::ClusterTestbedConfig bed;
  bed.hosts = 3;
  bed.vbd_mib = 16;
  bed.guest_mem_mib = 4;
  bed.disk.seq_read_mbps = 800.0;
  bed.disk.seq_write_mbps = 700.0;
  bed.disk.seek = 100_us;
  bed.disk.request_overhead = 5_us;
  bed.lan.bandwidth_mibps = 1000.0;
  bed.lan.latency = 50_us;
  scenario::ClusterTestbed tb{sim, bed};
  std::vector<std::unique_ptr<workload::DiabolicalWorkload>> wls;
  for (int i = 0; i < 4; ++i) {
    vm::Domain& d = tb.add_vm("vm" + std::to_string(i), 0);
    wls.push_back(std::make_unique<workload::DiabolicalWorkload>(
        sim, d, seed * 100 + static_cast<std::uint64_t>(i)));
  }
  tb.prefill_disks();

  fault::FaultInjector inj{
      sim,
      fault::FaultSpec::parse("outage@4ms+8ms; loss@0s+60s:0.1; "
                              "degrade@20ms+80ms:0.4; latency@25ms+80ms:1ms"),
      seed};
  inj.arm_path(tb.host(0).link_to(tb.host(1)),
               tb.host(1).link_to(tb.host(0)), "h0-h1");

  auto cfg = core::MigrationConfig::build()
                 .bitmap(core::BitmapKind::kFlat)
                 .disk_iterations(4, 64)
                 .done();
  cfg.postcopy_pull_timeout = 2_ms;
  cfg.postcopy_recovery_interval = 500_us;
  cfg.postcopy_freeze_deadline = 20_ms;

  obs::FlightRecorder rec;
  cluster::Orchestrator orch{
      sim, tb.manager(),
      {.caps = {.per_source = 2, .per_dest = 2, .per_link = 1},
       .retry = {.max_attempts = 5,
                 .initial_backoff = sim::Duration::millis(10)},
       .recorder = &rec}};
  for (auto& wl : wls) wl->start();
  orch.submit_evacuation(tb.host(0), tb.hosts_except(0), cfg);
  sim.spawn([](sim::Simulator* sim, cluster::Orchestrator* orch,
               std::vector<std::unique_ptr<workload::DiabolicalWorkload>>* wls)
                -> sim::Task<void> {
    while (!orch->all_terminal()) co_await sim->delay(1_ms);
    for (auto& wl : *wls) wl->request_stop();
  }(&sim, &orch, &wls));
  orch.drain();
  EXPECT_TRUE(orch.all_terminal());

  if (profiled) Profiler::deactivate();
  std::ostringstream out;
  obs::write_flight_record(out, rec);
  return out.str();
}

TEST(ProfilerDeterminism, ChaosSeededFaultRunIsByteIdenticalUnderProfiling) {
  const std::string off = run_chaos(false, 3);
  const std::string on = run_chaos(true, 3);
  EXPECT_EQ(off, on);
  // The run exercised real fault paths, not a quiet migration.
  EXPECT_NE(off.find("\"status\":\"completed\""), std::string::npos);
}

// ------------------------------------------- zero-alloc steady state

// Tentpole acceptance: once the pools are warm, the simulator dispatch loop
// and the post-copy pull path allocate nothing. The first evacuation grows
// every arena/ring/freelist to its high-water mark; the evacuation back must
// then run allocation-free in the hot categories (per-migration setup is
// control-plane work, explicitly scoped kOther at its sites).
TEST(ProfilerSteadyState, SecondEvacuationAllocatesNothingInHotCategories) {
  Profiler prof;
  prof.activate();

  sim::Simulator sim;
  scenario::ClusterTestbedConfig bed;
  bed.hosts = 3;
  bed.vbd_mib = 16;
  bed.guest_mem_mib = 4;
  bed.disk.seq_read_mbps = 800.0;
  bed.disk.seq_write_mbps = 700.0;
  bed.disk.seek = 100_us;
  bed.disk.request_overhead = 5_us;
  bed.lan.bandwidth_mibps = 1000.0;
  bed.lan.latency = 50_us;
  scenario::ClusterTestbed tb{sim, bed};
  std::vector<std::unique_ptr<workload::DiabolicalWorkload>> wls;
  for (int i = 0; i < 2; ++i) {
    vm::Domain& d = tb.add_vm("vm" + std::to_string(i), 0);
    wls.push_back(
        std::make_unique<workload::DiabolicalWorkload>(sim, d, 700 + i));
  }
  tb.prefill_disks();

  auto cfg = core::MigrationConfig::build()
                 .bitmap(core::BitmapKind::kThreeLevel)
                 .disk_iterations(4, 64)
                 .done();
  cfg.postcopy_pull_timeout = 2_ms;
  cfg.postcopy_recovery_interval = 500_us;
  cfg.postcopy_freeze_deadline = 20_ms;

  obs::FlightRecorder rec;
  cluster::Orchestrator orch{
      sim, tb.manager(),
      {.caps = {.per_source = 2, .per_dest = 2, .per_link = 1},
       .retry = {.max_attempts = 5,
                 .initial_backoff = sim::Duration::millis(10)},
       .recorder = &rec}};
  for (auto& wl : wls) wl->start();

  // The workloads never let the event queue go idle, so instead of drain()
  // we time-slice run_for() until the orchestrator reports terminal.
  const auto drive = [&] {
    sim.spawn(orch.run());
    while (!orch.all_terminal()) sim.run_for(1_ms);
  };

  // Warm-up: evacuate host 0; pools, rings and arenas reach their
  // high-water marks (and allocate freely while doing so).
  orch.submit_evacuation(tb.host(0), tb.hosts_except(0), cfg);
  drive();
  ASSERT_TRUE(orch.all_terminal());
  ASSERT_GT(orch.jobs_completed(), 0u);

  const auto& dispatch = prof.stats(ProfCategory::kSimDispatch);
  const auto& pull = prof.stats(ProfCategory::kPostCopyPull);
  const std::uint64_t dispatch_allocs0 = dispatch.allocs;
  const std::uint64_t pull_allocs0 = pull.allocs;
  const std::uint64_t pull_calls0 = pull.calls;
  const std::uint64_t jobs0 = orch.jobs_completed();

  // Steady state: evacuate everything back onto host 0.
  orch.submit_evacuation(tb.host(1), {&tb.host(0)}, cfg);
  orch.submit_evacuation(tb.host(2), {&tb.host(0)}, cfg);
  drive();
  ASSERT_TRUE(orch.all_terminal());
  EXPECT_GT(orch.jobs_completed(), jobs0);

  for (auto& wl : wls) wl->request_stop();
  sim.run();
  Profiler::deactivate();

  // The second evacuation really did run hot-path work...
  EXPECT_GT(dispatch.calls, 0u);
  EXPECT_GT(pull.calls, pull_calls0);
  // ...and allocated nothing on either hot path.
  EXPECT_EQ(dispatch.allocs - dispatch_allocs0, 0u);
  EXPECT_EQ(pull.allocs - pull_allocs0, 0u);
}

}  // namespace
}  // namespace vmig
