// Wire-protocol unit tests: message sizes (what the paper's "amount of
// migrated data" is made of), variant dispatch, and disk capture helpers.

#include "core/protocol.hpp"

#include <gtest/gtest.h>

namespace vmig::core {
namespace {

using storage::BlockRange;
using storage::Geometry;

TEST(ProtocolTest, DiskBlocksWireIsBlockData) {
  DiskBlocksMsg m{BlockRange{0, 256}, std::vector<storage::ContentToken>(256),
                  4096, false};
  EXPECT_EQ(m.wire_bytes(), kMsgHeaderBytes + 256ull * 4096ull);
  DiskBlocksMsg sector{BlockRange{0, 8}, std::vector<storage::ContentToken>(8),
                       512, false};
  EXPECT_EQ(sector.wire_bytes(), kMsgHeaderBytes + 8ull * 512ull);
}

TEST(ProtocolTest, MemPagesWireIncludesFrameHeaders) {
  MemPagesMsg m;
  m.page_size = 4096;
  for (int i = 0; i < 10; ++i) m.pages.emplace_back(i, 1);
  EXPECT_EQ(m.wire_bytes(), kMsgHeaderBytes + 10ull * (4096 + 8));
}

TEST(ProtocolTest, BitmapWireTracksBitmapKind) {
  BlockBitmapMsg flat{DirtyBitmap{BitmapKind::kFlat, 1ull << 20}};
  BlockBitmapMsg layered{DirtyBitmap{BitmapKind::kLayered, 1ull << 20}};
  EXPECT_EQ(flat.wire_bytes(), kMsgHeaderBytes + (1ull << 20) / 8);
  EXPECT_LT(layered.wire_bytes(), flat.wire_bytes());  // all-clean: upper only
}

TEST(ProtocolTest, SmallMessagesAreHeaderSized) {
  EXPECT_EQ(PullRequestMsg{42}.wire_bytes(), kMsgHeaderBytes);
  EXPECT_EQ(ControlMsg{Control::kVbdReady}.wire_bytes(), kMsgHeaderBytes);
  EXPECT_EQ(CpuStateMsg{vm::VCpuState{}}.wire_bytes(),
            kMsgHeaderBytes + vm::VCpuState::kWireBytes);
}

TEST(ProtocolTest, VariantDispatch) {
  MigrationMessage m{PullRequestMsg{7}};
  EXPECT_TRUE(m.is<PullRequestMsg>());
  EXPECT_FALSE(m.is<ControlMsg>());
  ASSERT_NE(m.get_if<PullRequestMsg>(), nullptr);
  EXPECT_EQ(m.get_if<PullRequestMsg>()->block, 7u);
  EXPECT_EQ(m.get_if<DiskBlocksMsg>(), nullptr);
  EXPECT_EQ(m.wire_bytes(), kMsgHeaderBytes);
}

TEST(ProtocolTest, FromDiskCapturesTokens) {
  sim::Simulator sim;
  storage::VirtualDisk disk{sim, Geometry::from_blocks(64)};
  disk.poke_token(10, 111);
  disk.poke_token(11, 222);
  const auto m = DiskBlocksMsg::from_disk(disk, BlockRange{10, 2}, false);
  ASSERT_EQ(m.tokens.size(), 2u);
  EXPECT_EQ(m.tokens[0], 111u);
  EXPECT_EQ(m.tokens[1], 222u);
  EXPECT_TRUE(m.payloads.empty());  // token-only disk
  EXPECT_FALSE(m.pull_response);
  EXPECT_FALSE(m.delta);
}

TEST(ProtocolTest, FromDiskCapturesPayloadsInPayloadMode) {
  sim::Simulator sim;
  storage::VirtualDisk disk{sim, Geometry::from_blocks(8, 512), {}, true};
  std::vector<std::byte> data(512, std::byte{0x5a});
  disk.poke_payload(3, data);
  disk.poke_token(3, storage::VirtualDisk::hash_bytes(data));
  const auto m = DiskBlocksMsg::from_disk(disk, BlockRange{3, 1}, true);
  ASSERT_EQ(m.payloads.size(), 512u);
  EXPECT_EQ(m.payloads[0], std::byte{0x5a});
  EXPECT_TRUE(m.pull_response);

  // Round-trip onto another payload disk.
  storage::VirtualDisk dst{sim, Geometry::from_blocks(8, 512), {}, true};
  m.apply_payloads_to(dst);
  ASSERT_EQ(dst.payload(3).size(), 512u);
  EXPECT_EQ(dst.payload(3)[511], std::byte{0x5a});
}

TEST(ProtocolTest, ApplyPayloadsIsNoopForTokenOnlyDisks) {
  sim::Simulator sim;
  storage::VirtualDisk src{sim, Geometry::from_blocks(8, 512), {}, true};
  storage::VirtualDisk dst{sim, Geometry::from_blocks(8, 512)};  // token-only
  std::vector<std::byte> data(512, std::byte{1});
  src.poke_payload(0, data);
  const auto m = DiskBlocksMsg::from_disk(src, BlockRange{0, 1}, false);
  m.apply_payloads_to(dst);  // must not crash or store
  EXPECT_TRUE(dst.payload(0).empty());
}

TEST(ProtocolTest, DeltaFlagSurvivesConstruction) {
  DiskBlocksMsg d{BlockRange{0, 1}, {1}, 4096, false, /*is_delta=*/true};
  EXPECT_TRUE(d.delta);
  MigrationMessage m{std::move(d)};
  EXPECT_TRUE(m.get_if<DiskBlocksMsg>()->delta);
}

}  // namespace
}  // namespace vmig::core
