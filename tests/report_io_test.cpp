#include "core/report_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "simcore/simulator.hpp"

namespace vmig::core {
namespace {

using namespace vmig::sim::literals;

MigrationReport sample_report() {
  MigrationReport r;
  r.started = sim::TimePoint::origin() + 10_s;
  r.disk_precopy_done = r.started + 100_s;
  r.suspended = r.started + 120_s;
  r.resumed = r.suspended + 60_ms;
  r.synchronized = r.resumed + 500_ms;
  r.bytes_disk_first_pass = 1'000'000;
  r.bytes_disk_retransfer = 50'000;
  r.bytes_memory_precopy = 200'000;
  r.bytes_bitmap = 1'024;
  r.disk_iterations = 3;
  r.mem_iterations = 2;
  r.blocks_retransferred = 12;
  r.residual_dirty_blocks = 3;
  r.blocks_pulled = 1;
  r.incremental = true;
  r.disk_consistent = true;
  r.memory_consistent = true;
  return r;
}

TEST(ReportIoTest, JsonContainsHeadlineMetrics) {
  const auto j = to_json(sample_report());
  EXPECT_NE(j.find("\"total_time_s\": 120.56"), std::string::npos) << j;
  EXPECT_NE(j.find("\"downtime_s\": 0.06"), std::string::npos);
  EXPECT_NE(j.find("\"bytes_disk_first_pass\": 1000000"), std::string::npos);
  EXPECT_NE(j.find("\"disk_iterations\": 3"), std::string::npos);
  EXPECT_NE(j.find("\"incremental\": true"), std::string::npos);
  EXPECT_NE(j.find("\"disk_consistent\": true"), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

TEST(ReportIoTest, JsonIsWellFormedEnough) {
  // Poor man's structural check: balanced braces, no trailing comma.
  const auto j = to_json(sample_report());
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'), 1);
  EXPECT_EQ(std::count(j.begin(), j.end(), '}'), 1);
  EXPECT_EQ(j.find(",\n}"), std::string::npos);
  // Every key appears exactly once.
  EXPECT_EQ(j.find("\"downtime_s\""), j.rfind("\"downtime_s\""));
}

TEST(ReportIoTest, CsvRowMatchesHeaderArity) {
  const auto header = csv_header();
  const auto row = to_csv_row(sample_report());
  const auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(commas(header), commas(row));
  EXPECT_NE(row.find("120.56"), std::string::npos);
  EXPECT_NE(row.find(",1,1,1"), std::string::npos);  // flags at the end
}

TEST(ReportIoTest, TimeSeriesCsv) {
  sim::TimeSeries ts;
  ts.add(sim::TimePoint::origin() + 1_s, 10.5);
  ts.add(sim::TimePoint::origin() + 2_s, 20.25);
  const auto csv = to_csv(ts);
  EXPECT_EQ(csv.find("t_seconds,value\n"), 0u);
  EXPECT_NE(csv.find("1.000000,10.500000"), std::string::npos);
  EXPECT_NE(csv.find("2.000000,20.250000"), std::string::npos);
}

TEST(ReportIoTest, EmptySeriesCsvIsJustHeader) {
  sim::TimeSeries ts;
  EXPECT_EQ(to_csv(ts), "t_seconds,value\n");
}

// The streaming registry export must produce exactly the bytes of the
// string-building one: `vmig_sim --metrics` switched to write_csv for
// bounded memory at fleet scale, and downstream diffing relies on the
// output not changing.
TEST(ReportIoTest, RegistryStreamingCsvMatchesStringCsv) {
  sim::Simulator sim;
  obs::Registry reg{sim};
  obs::Counter& c = reg.counter("migrations.bytes");
  obs::Gauge& g = reg.gauge("cluster.jobs_running");
  reg.probe("sim.pending_events", [] { return 7.25; });
  obs::Histogram& h = reg.histogram("postcopy.read_stall_ns");

  // A few samples with oddly-shaped values: rounding must match too.
  for (int i = 1; i <= 3; ++i) {
    c.add(1234567 * i);
    g.set(i * 0.333333);
    h.observe(i * 1e6 + 0.5);
    reg.sample_now();
    sim.spawn(
        [](sim::Simulator& s) -> sim::Task<void> {
          co_await s.delay(sim::Duration::millis(333));
        }(sim),
        "advance");
    sim.run();
  }

  const std::string built = to_csv(reg);
  std::ostringstream streamed;
  write_csv(streamed, reg);
  EXPECT_EQ(streamed.str(), built);
  EXPECT_EQ(built.find("t_seconds,metric,value\n"), 0u);
  EXPECT_NE(built.find("postcopy.read_stall_ns.p95"), std::string::npos);
}

TEST(ReportIoTest, RegistryStreamingCsvEmptyRegistry) {
  sim::Simulator sim;
  obs::Registry reg{sim};
  std::ostringstream streamed;
  write_csv(streamed, reg);
  EXPECT_EQ(streamed.str(), to_csv(reg));
  EXPECT_EQ(streamed.str(), "t_seconds,metric,value\n");
}

}  // namespace
}  // namespace vmig::core
