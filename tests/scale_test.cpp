// Datacenter-scale semantics: lazy instantiation of hosts/VMs/links in
// ClusterTestbed, deterministic least-loaded destination picking, and the
// two scale-mode A/B pins of docs/SCALE.md —
//   * fast-forward ON vs OFF produces byte-identical MigrationReport JSON
//     and flight records (including under an injected link fault), and
//   * shard count never changes results (1 shard vs 8 shards, same bytes).

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/orchestrator.hpp"
#include "core/report_io.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/rollup.hpp"
#include "scenario/cluster_testbed.hpp"
#include "workloads/steady_writer.hpp"

namespace vmig::scenario {
namespace {

using namespace vmig::sim::literals;

ClusterTestbedConfig fast_cluster(int hosts) {
  ClusterTestbedConfig cfg;
  cfg.hosts = hosts;
  cfg.vbd_mib = 16;
  cfg.guest_mem_mib = 4;
  // Fast hardware keeps these tests in the millisecond range.
  cfg.disk.seq_read_mbps = 800.0;
  cfg.disk.seq_write_mbps = 700.0;
  cfg.disk.seek = 100_us;
  cfg.disk.request_overhead = 5_us;
  cfg.lan.bandwidth_mibps = 1000.0;
  cfg.lan.latency = 50_us;
  return cfg;
}

core::MigrationConfig quick_config() {
  return core::MigrationConfig::build()
      .bitmap(core::BitmapKind::kFlat)
      .disk_iterations(4, 64)
      .done();
}

// ------------------------------------------------------- lazy instantiation

TEST(LazyClusterTest, ColdHostsAndVmsStayUnmaterialized) {
  sim::Simulator sim;
  ClusterTestbed tb{sim, fast_cluster(512)};
  EXPECT_EQ(tb.host_count(), 512u);
  EXPECT_EQ(tb.materialized_host_count(), 0u);

  // Cold registration creates no objects but counts as load.
  for (int h = 0; h < 512; ++h) {
    tb.register_vm("cold" + std::to_string(h), static_cast<std::size_t>(h));
  }
  EXPECT_EQ(tb.vm_count(), 512u);
  EXPECT_EQ(tb.materialized_vm_count(), 0u);
  EXPECT_EQ(tb.materialized_host_count(), 0u);
  EXPECT_EQ(tb.registered_vms_on(7), 1u);

  // Touching a host materializes it alone.
  hv::Host& h3 = tb.host(3);
  EXPECT_EQ(h3.name(), "host3");
  EXPECT_EQ(tb.materialized_host_count(), 1u);
  EXPECT_TRUE(tb.host_materialized(3));
  EXPECT_FALSE(tb.host_materialized(4));

  // Materializing a VM pulls in exactly its host.
  vm::Domain& d = tb.vm(9);
  EXPECT_EQ(d.name(), "cold9");
  EXPECT_TRUE(tb.host(9).hosts_domain(d));
  EXPECT_EQ(tb.materialized_vm_count(), 1u);
  EXPECT_EQ(tb.materialized_host_count(), 2u);

  // The mesh is semantically full between materialized hosts, but the Link
  // object only exists after first traversal.
  hv::Host& h9 = tb.host(9);
  EXPECT_TRUE(h3.connected_to(h9));
  EXPECT_TRUE(h9.connected_to(h3));
  EXPECT_EQ(h3.find_link(h9), nullptr);
  net::Link& l = h3.link_to(h9);
  EXPECT_EQ(h3.find_link(h9), &l);
  EXPECT_EQ(&h3.link_to(h9), &l);  // second lookup reuses it
}

TEST(LazyClusterTest, DomainIdsFollowRegistrationOrderNotTouchOrder) {
  sim::Simulator sim;
  ClusterTestbed tb{sim, fast_cluster(4)};
  const std::size_t a = tb.register_vm("a", 0);
  const std::size_t b = tb.register_vm("b", 1);
  const std::size_t c = tb.register_vm("c", 2);
  // Touch out of order: ids were fixed at registration.
  EXPECT_EQ(tb.vm(c).id(), 3);
  EXPECT_EQ(tb.vm(a).id(), 1);
  EXPECT_EQ(tb.vm(b).id(), 2);
}

TEST(LazyClusterTest, PrefillAppliesAtMaterializationTime) {
  sim::Simulator sim;
  ClusterTestbed tb{sim, fast_cluster(4)};
  vm::Domain& early = tb.add_vm("early", 0);
  const std::size_t late = tb.register_vm("late", 1);
  tb.prefill_disks();

  const auto token = [&](hv::Host& h, vm::Domain& d) {
    return h.vbd_for(d.id()).token(5);
  };
  const std::uint64_t early_tok = token(tb.host(0), early);
  // Materialized after prefill_disks(): stamped on materialization, with
  // the same id-derived tokens an eager prefill would have written.
  vm::Domain& late_d = tb.vm(late);
  const std::uint64_t late_tok = token(tb.host(1), late_d);
  EXPECT_EQ(early_tok, 0x5000000000000000ull + (1ull << 32) + 5);
  EXPECT_EQ(late_tok, 0x5000000000000000ull + (2ull << 32) + 5);
}

TEST(LazyClusterTest, PickDestinationsIsLeastLoadedAndLazy) {
  sim::Simulator sim;
  ClusterTestbed tb{sim, fast_cluster(64)};
  // Load hosts 1..3 so they lose the least-loaded race.
  for (int i = 0; i < 3; ++i) tb.register_vm("r1", 1);
  for (int i = 0; i < 2; ++i) tb.register_vm("r2", 2);
  tb.register_vm("r3", 3);

  const auto picks = tb.pick_destinations(0, 4);
  ASSERT_EQ(picks.size(), 4u);
  // Empty hosts win, ties broken by index ascending; host0 excluded.
  EXPECT_EQ(picks[0]->name(), "host4");
  EXPECT_EQ(picks[1]->name(), "host5");
  EXPECT_EQ(picks[2]->name(), "host6");
  EXPECT_EQ(picks[3]->name(), "host7");
  // Only the picked hosts materialized.
  EXPECT_EQ(tb.materialized_host_count(), 4u);

  // Deterministic: a fresh identical testbed picks the same set.
  sim::Simulator sim2;
  ClusterTestbed tb2{sim2, fast_cluster(64)};
  for (int i = 0; i < 3; ++i) tb2.register_vm("r1", 1);
  for (int i = 0; i < 2; ++i) tb2.register_vm("r2", 2);
  tb2.register_vm("r3", 3);
  const auto picks2 = tb2.pick_destinations(0, 4);
  ASSERT_EQ(picks2.size(), 4u);
  for (std::size_t i = 0; i < picks.size(); ++i) {
    EXPECT_EQ(picks[i]->name(), picks2[i]->name());
  }
}

// --------------------------------------------------------------- A/B harness

struct ScaleRun {
  std::vector<cluster::JobId> order;
  std::vector<std::string> outcomes;     // "<status>/<attempts>"
  std::vector<std::string> report_json;  // core::to_json per job, id order
  std::string flight_jsonl;
  std::string fleet_csv_full;       // rollup export incl. shard<i>.* rows
  std::string fleet_csv_noshards;   // the cross-shard-count invariant view
  std::uint64_t retries = 0;
  std::uint64_t writer_ticks = 0;  // live ticks actually fired (diagnostic)
  std::uint64_t writer_settles = 0;
  double sim_s = 0;
  bool all_ok = false;
};

/// One evacuation of `vms` steadily-writing guests out of host0 in an
/// N-host lazy mesh, with every knob of the scale machinery parameterized.
/// `with_rollup` attaches a fleet rollup (obs::Rollup) and captures both
/// export views.
ScaleRun run_scale(int hosts, int vms, bool fast_forward, int shards,
                   bool lazy, bool inject_fault, bool with_rollup = false) {
  sim::Simulator sim;
  sim.set_fast_forward(fast_forward);
  ClusterTestbedConfig bed = fast_cluster(hosts);
  bed.lazy = lazy;
  bed.shards = shards;
  ClusterTestbed tb{sim, bed};
  for (int i = 0; i < vms; ++i) tb.add_vm("vm" + std::to_string(i), 0);
  // A cold fleet shapes placement but never materializes.
  for (int h = 1; h < hosts; ++h) {
    tb.register_vm("cold" + std::to_string(h), static_cast<std::size_t>(h));
  }
  tb.prefill_disks();

  std::vector<std::unique_ptr<workload::SteadyWriter>> writers;
  for (int i = 0; i < vms; ++i) {
    workload::SteadyWriterConfig wc;
    wc.blocks_per_tick = 16;
    wc.region_blocks = 1024;
    wc.until = sim::TimePoint::origin() + 1_s;
    writers.push_back(std::make_unique<workload::SteadyWriter>(
        sim, tb.vm(static_cast<std::size_t>(i)), wc));
    writers.back()->start();
  }

  obs::FlightRecorder rec;
  auto cfg = quick_config();
  cfg.obs_recorder = &rec;

  std::unique_ptr<obs::Rollup> rollup;
  if (with_rollup) {
    obs::RollupConfig rcfg;
    rcfg.hosts = static_cast<std::size_t>(hosts);
    rcfg.sample_interval = sim::Duration::millis(100);
    rollup = std::make_unique<obs::Rollup>(sim, rcfg);
    tb.attach_rollup(rollup.get());
    rollup->start_sampling();
  }

  cluster::Orchestrator orch{
      sim, tb.manager(),
      {.caps = {.per_source = 4, .per_dest = 2, .per_link = 1},
       .retry = {.max_attempts = 3,
                 .initial_backoff = sim::Duration::millis(20)},
       .rollup = rollup.get()}};
  orch.submit_evacuation(
      tb.host(0),
      tb.pick_destinations(0, std::min<std::size_t>(
                                  static_cast<std::size_t>(hosts) - 1, 8)),
      cfg);
  if (inject_fault) {
    // Chaos window on the busiest path mid-evacuation: jobs in flight
    // abort, back off, and retry — all of it must replay byte-identically.
    auto dests = tb.pick_destinations(0, 1);
    tb.host(0).link_to(*dests[0]).fail_at(sim::TimePoint{} + 4_ms, 8_ms);
  }
  orch.drain();

  ScaleRun r;
  r.order = orch.completion_order();
  for (std::size_t i = 0; i < orch.job_count(); ++i) {
    const auto& j = orch.job(static_cast<cluster::JobId>(i));
    r.outcomes.push_back(std::string{core::to_string(j.outcome.status)} + "/" +
                         std::to_string(j.attempts));
    r.report_json.push_back(core::to_json(j.outcome.report));
  }
  std::ostringstream out;
  obs::write_flight_record(out, rec);
  r.flight_jsonl = out.str();
  if (rollup != nullptr) {
    rollup->sample_now();  // terminal fleet state
    r.fleet_csv_full = rollup->to_csv(/*include_shards=*/true);
    r.fleet_csv_noshards = rollup->to_csv(/*include_shards=*/false);
  }
  r.retries = orch.retries();
  for (const auto& w : writers) {
    r.writer_ticks += w->ticks_applied();
    r.writer_settles += w->bulk_settles();
  }
  r.sim_s = sim.now().to_seconds();
  r.all_ok = orch.all_terminal() && orch.jobs_failed() == 0;
  for (std::size_t i = 0; i < orch.job_count(); ++i) {
    r.all_ok =
        r.all_ok && orch.job(static_cast<cluster::JobId>(i)).outcome.ok();
  }
  return r;
}

void expect_same_bytes(const ScaleRun& a, const ScaleRun& b) {
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.outcomes, b.outcomes);
  ASSERT_EQ(a.report_json.size(), b.report_json.size());
  for (std::size_t i = 0; i < a.report_json.size(); ++i) {
    EXPECT_EQ(a.report_json[i], b.report_json[i]) << "report " << i;
  }
  EXPECT_EQ(a.flight_jsonl, b.flight_jsonl);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_DOUBLE_EQ(a.sim_s, b.sim_s);
}

// ------------------------------------------------- fast-forward A/B pinning

TEST(FastForwardScaleTest, ByteIdenticalReportsAt256Hosts) {
  const ScaleRun ticked = run_scale(256, 16, /*fast_forward=*/false,
                                    /*shards=*/0, /*lazy=*/true,
                                    /*inject_fault=*/false);
  const ScaleRun ff = run_scale(256, 16, /*fast_forward=*/true,
                                /*shards=*/0, /*lazy=*/true,
                                /*inject_fault=*/false);
  EXPECT_TRUE(ticked.all_ok);
  EXPECT_TRUE(ff.all_ok);
  // The mode did something: fast-forward folded ticks into bulk settles.
  EXPECT_GT(ticked.writer_ticks, 0u);
  EXPECT_GT(ff.writer_settles, 0u);
  expect_same_bytes(ticked, ff);
}

TEST(FastForwardScaleTest, ByteIdenticalUnderChaosFault) {
  const ScaleRun ticked = run_scale(256, 16, /*fast_forward=*/false,
                                    /*shards=*/0, /*lazy=*/true,
                                    /*inject_fault=*/true);
  const ScaleRun ff = run_scale(256, 16, /*fast_forward=*/true,
                                /*shards=*/0, /*lazy=*/true,
                                /*inject_fault=*/true);
  EXPECT_TRUE(ticked.all_ok);
  // The outage must actually bite for the pin to mean anything.
  EXPECT_GT(ticked.retries, 0u);
  expect_same_bytes(ticked, ff);
}

TEST(FastForwardScaleTest, TickedModeReplaysItself) {
  // Control: the harness itself is deterministic run-to-run.
  const ScaleRun a = run_scale(64, 8, false, 0, true, true);
  const ScaleRun b = run_scale(64, 8, false, 0, true, true);
  expect_same_bytes(a, b);
}

// -------------------------------------------------------- shard invariance

TEST(ShardScaleTest, OneShardVsEightShardsSameBytes) {
  const ScaleRun one = run_scale(128, 8, /*fast_forward=*/true, /*shards=*/1,
                                 /*lazy=*/true, /*inject_fault=*/false);
  const ScaleRun eight = run_scale(128, 8, /*fast_forward=*/true, /*shards=*/8,
                                   /*lazy=*/true, /*inject_fault=*/false);
  EXPECT_TRUE(one.all_ok);
  expect_same_bytes(one, eight);
}

TEST(ShardScaleTest, ShardedChaosRunSameBytes) {
  const ScaleRun one = run_scale(128, 8, false, 1, true, true);
  const ScaleRun eight = run_scale(128, 8, false, 8, true, true);
  expect_same_bytes(one, eight);
}

// ----------------------------------------------------- lazy/eager identity

TEST(LazyClusterTest, LazyAndEagerRunsAreByteIdentical) {
  const ScaleRun lazy = run_scale(16, 8, /*fast_forward=*/true, /*shards=*/1,
                                  /*lazy=*/true, /*inject_fault=*/true);
  const ScaleRun eager = run_scale(16, 8, /*fast_forward=*/true, /*shards=*/1,
                                   /*lazy=*/false, /*inject_fault=*/true);
  EXPECT_TRUE(lazy.all_ok);
  expect_same_bytes(lazy, eager);
}

// ------------------------------------------------------- fleet rollup pins

TEST(ShardScaleTest, RollupExportIsShardCountInvariant) {
  const ScaleRun one = run_scale(128, 8, /*fast_forward=*/true, /*shards=*/1,
                                 /*lazy=*/true, /*inject_fault=*/false,
                                 /*with_rollup=*/true);
  const ScaleRun eight = run_scale(128, 8, /*fast_forward=*/true, /*shards=*/8,
                                   /*lazy=*/true, /*inject_fault=*/false,
                                   /*with_rollup=*/true);
  EXPECT_TRUE(one.all_ok);
  ASSERT_FALSE(one.fleet_csv_noshards.empty());
  // Everything but the shard<i>.* rows is byte-identical across shard
  // counts; the full export differs only in those rows by construction.
  EXPECT_EQ(one.fleet_csv_noshards, eight.fleet_csv_noshards);
  EXPECT_NE(one.fleet_csv_full, eight.fleet_csv_full);
  // Attaching the rollup perturbs nothing the existing pins cover.
  expect_same_bytes(one, eight);
}

TEST(ShardScaleTest, RollupExportShardInvariantUnderChaosFault) {
  const ScaleRun one = run_scale(128, 8, /*fast_forward=*/false, /*shards=*/1,
                                 /*lazy=*/true, /*inject_fault=*/true,
                                 /*with_rollup=*/true);
  const ScaleRun eight = run_scale(128, 8, /*fast_forward=*/false,
                                   /*shards=*/8, /*lazy=*/true,
                                   /*inject_fault=*/true, /*with_rollup=*/true);
  // The outage must bite — retries and SLO accounting flow into the rollup.
  EXPECT_GT(one.retries, 0u);
  EXPECT_EQ(one.fleet_csv_noshards, eight.fleet_csv_noshards);
}

TEST(ShardScaleTest, RollupReplaysByteIdentically) {
  const ScaleRun a = run_scale(64, 8, true, 4, true, true, true);
  const ScaleRun b = run_scale(64, 8, true, 4, true, true, true);
  EXPECT_EQ(a.fleet_csv_full, b.fleet_csv_full);
  expect_same_bytes(a, b);
}

TEST(LazyClusterTest, RollupExportLazyEagerIdentical) {
  const ScaleRun lazy = run_scale(16, 8, /*fast_forward=*/true, /*shards=*/1,
                                  /*lazy=*/true, /*inject_fault=*/true,
                                  /*with_rollup=*/true);
  const ScaleRun eager = run_scale(16, 8, /*fast_forward=*/true, /*shards=*/1,
                                   /*lazy=*/false, /*inject_fault=*/true,
                                   /*with_rollup=*/true);
  // Eager registers every host cell up front, lazy on first touch — the
  // untouched cells are zero either way, so even the full export matches.
  EXPECT_EQ(lazy.fleet_csv_full, eager.fleet_csv_full);
}

// -------------------------------------------- link series stay proportional

TEST(LazyClusterTest, LinkSeriesExistOnlyForMaterializedLinks) {
  // A 10k-host lazy mesh holds ~10^8 potential directed links; the registry
  // must only ever see the handful the evacuation traverses (4 instruments
  // per link: bytes, messages, utilization, backlog).
  sim::Simulator sim;
  sim.set_fast_forward(true);
  ClusterTestbed tb{sim, fast_cluster(10000)};
  obs::Registry reg{sim};
  tb.attach_obs(&reg);
  const std::size_t base = reg.instrument_count();  // the sim.* probes
  EXPECT_EQ(base, 3u);

  for (int i = 0; i < 8; ++i) tb.add_vm("vm" + std::to_string(i), 0);
  for (int h = 1; h < 10000; ++h) {
    tb.register_vm("cold" + std::to_string(h), static_cast<std::size_t>(h));
  }
  // Cold registrations shape placement but create no links and no series.
  EXPECT_EQ(reg.instrument_count(), base);
  tb.prefill_disks();

  cluster::Orchestrator orch{
      sim, tb.manager(),
      {.caps = {.per_source = 4, .per_dest = 2, .per_link = 1}}};
  orch.submit_evacuation(tb.host(0), tb.pick_destinations(0, 8),
                         quick_config());
  orch.drain();
  EXPECT_TRUE(orch.all_terminal());
  EXPECT_EQ(orch.jobs_failed(), 0u);

  // Only host0 and its destinations materialized...
  std::vector<std::size_t> mat;
  for (std::size_t i = 0; i < tb.host_count(); ++i) {
    if (tb.host_materialized(i)) mat.push_back(i);
  }
  ASSERT_LE(mat.size(), 9u);
  // ...and the instrument count is exactly 4 per link that actually exists
  // between them, not a function of the 10k-host mesh.
  std::size_t links = 0;
  for (const std::size_t a : mat) {
    for (const std::size_t b : mat) {
      if (a != b && tb.host(a).find_link(tb.host(b)) != nullptr) ++links;
    }
  }
  EXPECT_GT(links, 0u);
  EXPECT_EQ(reg.instrument_count(), base + 4 * links);
}

}  // namespace
}  // namespace vmig::scenario
