#include <gtest/gtest.h>

#include "scenario/testbed.hpp"
#include "workloads/streaming.hpp"
#include "workloads/web_server.hpp"

namespace vmig::scenario {
namespace {

using sim::Simulator;
using namespace vmig::sim::literals;

TEST(TestbedTest, ConstructionMatchesPaperEnvironment) {
  Simulator sim;
  Testbed tb{sim};
  EXPECT_EQ(tb.config().vbd_mib, 39070u);
  EXPECT_EQ(tb.config().guest_mem_mib, 512u);
  EXPECT_EQ(tb.vm().memory().page_count(), 131072u);
  EXPECT_EQ(tb.source().disk().geometry().total_mib(), 39070.0);
  EXPECT_TRUE(tb.source().hosts_domain(tb.vm()));
  EXPECT_TRUE(tb.source().connected_to(tb.dest()));
  EXPECT_TRUE(tb.dest().connected_to(tb.source()));
}

TEST(TestbedTest, PrefillPopulatesEveryBlock) {
  Simulator sim;
  TestbedConfig cfg;
  cfg.vbd_mib = 64;
  Testbed tb{sim, cfg};
  tb.prefill_disk();
  const auto& d = tb.source().disk();
  for (storage::BlockId b = 0; b < d.geometry().block_count; b += 997) {
    EXPECT_NE(d.token(b), storage::kZeroBlockToken);
  }
}

TEST(TestbedTest, IdleMigrationMatchesPaperShape) {
  // The calibration anchor: an idle guest's whole-system migration lands
  // near the paper's ~796 s / ~60 ms / ~39 GB (Table I).
  Simulator sim;
  Testbed tb{sim};
  tb.prefill_disk();
  const auto rep = tb.run_tpm(nullptr, 10_s, 10_s, tb.paper_migration_config());
  EXPECT_TRUE(rep.disk_consistent);
  EXPECT_TRUE(rep.memory_consistent);
  EXPECT_NEAR(rep.total_time().to_seconds(), 796.0, 80.0);
  EXPECT_NEAR(rep.downtime().to_millis(), 60.0, 30.0);
  EXPECT_NEAR(rep.total_mib(), 39070.0 + 512.0, 400.0);
  EXPECT_TRUE(tb.dest().hosts_domain(tb.vm()));
}

TEST(TestbedTest, SmallDiskRunsFast) {
  Simulator sim;
  TestbedConfig cfg;
  cfg.vbd_mib = 256;
  Testbed tb{sim, cfg};
  const auto rep = tb.run_tpm(nullptr, 1_s, 1_s, tb.paper_migration_config());
  EXPECT_TRUE(rep.disk_consistent);
  EXPECT_LT(rep.total_time().to_seconds(), 20.0);
}

TEST(TestbedTest, RunTpmWithWorkloadDrainsCleanly) {
  Simulator sim;
  TestbedConfig cfg;
  cfg.vbd_mib = 512;
  Testbed tb{sim, cfg};
  workload::StreamingWorkload stream{sim, tb.vm(), 3};
  const auto rep = tb.run_tpm(&stream, 5_s, 5_s, tb.paper_migration_config());
  EXPECT_TRUE(rep.disk_consistent);
  EXPECT_TRUE(rep.memory_consistent);
  EXPECT_TRUE(stream.finished());
  EXPECT_GT(stream.chunks_streamed(), 0u);
  EXPECT_FALSE(sim.has_pending());
}

TEST(TestbedTest, TpmThenImReturnsTwoReports) {
  Simulator sim;
  TestbedConfig cfg;
  cfg.vbd_mib = 512;
  Testbed tb{sim, cfg};
  workload::WebServerWorkload web{sim, tb.vm(), 5};
  const auto [primary, incremental] =
      tb.run_tpm_then_im(&web, 5_s, 30_s, 5_s, tb.paper_migration_config());
  EXPECT_FALSE(primary.incremental);
  EXPECT_TRUE(incremental.incremental);
  EXPECT_TRUE(primary.disk_consistent);
  EXPECT_TRUE(incremental.disk_consistent);
  EXPECT_TRUE(tb.source().hosts_domain(tb.vm()));  // back home
  // IM shrinks the *disk* transfer to the dirtied delta. (Memory always
  // moves in full, which is why the paper's Table II counts disk data only.)
  const auto disk_bytes = [](const core::MigrationReport& r) {
    return r.bytes_disk_first_pass + r.bytes_disk_retransfer +
           r.bytes_postcopy_push + r.bytes_postcopy_pull;
  };
  EXPECT_LT(disk_bytes(incremental), disk_bytes(primary) / 20);
  EXPECT_LT(incremental.total_time(), primary.total_time() / 2);
}

}  // namespace
}  // namespace vmig::scenario
