#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "simcore/channel.hpp"
#include "simcore/notifier.hpp"
#include "simcore/simulator.hpp"
#include "simcore/task.hpp"

namespace vmig::sim {
namespace {

using namespace vmig::sim::literals;

TEST(CoroutineTest, SpawnRunsToCompletion) {
  Simulator sim;
  bool done = false;
  auto h = sim.spawn([](Simulator& s, bool& flag) -> Task<void> {
    co_await s.delay(10_ms);
    flag = true;
  }(sim, done));
  EXPECT_FALSE(done);
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(h.done());
}

TEST(CoroutineTest, DelayAdvancesClock) {
  Simulator sim;
  TimePoint after{};
  sim.spawn([](Simulator& s, TimePoint& out) -> Task<void> {
    co_await s.delay(1_s);
    co_await s.delay(500_ms);
    out = s.now();
  }(sim, after));
  sim.run();
  EXPECT_EQ(after, TimePoint::origin() + 1500_ms);
}

TEST(CoroutineTest, ZeroDelayYields) {
  Simulator sim;
  std::vector<int> order;
  sim.spawn([](Simulator& s, std::vector<int>& o) -> Task<void> {
    o.push_back(1);
    co_await s.delay(Duration::zero());
    o.push_back(3);
  }(sim, order));
  order.push_back(2);  // spawn returned at first suspension
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(CoroutineTest, NestedTaskAwait) {
  Simulator sim;
  std::vector<std::string> log;

  struct Helper {
    static Task<int> child(Simulator& s, std::vector<std::string>& log) {
      log.push_back("child-start");
      co_await s.delay(5_ms);
      log.push_back("child-end");
      co_return 42;
    }
    static Task<void> parent(Simulator& s, std::vector<std::string>& log) {
      log.push_back("parent-start");
      const int v = co_await child(s, log);
      log.push_back("parent-got-" + std::to_string(v));
    }
  };

  sim.spawn(Helper::parent(sim, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"parent-start", "child-start",
                                           "child-end", "parent-got-42"}));
}

TEST(CoroutineTest, TaskReturnsValueTypes) {
  Simulator sim;
  std::string out;
  struct Helper {
    static Task<std::string> make(Simulator& s) {
      co_await s.delay(1_ms);
      co_return "hello";
    }
    static Task<void> run(Simulator& s, std::string& out) {
      out = co_await make(s);
    }
  };
  sim.spawn(Helper::run(sim, out));
  sim.run();
  EXPECT_EQ(out, "hello");
}

TEST(CoroutineTest, ExceptionPropagatesThroughAwait) {
  Simulator sim;
  bool caught = false;
  struct Helper {
    static Task<void> thrower(Simulator& s) {
      co_await s.delay(1_ms);
      throw std::runtime_error("boom");
    }
    static Task<void> outer(Simulator& s, bool& caught) {
      try {
        co_await thrower(s);
      } catch (const std::runtime_error& e) {
        caught = std::string{e.what()} == "boom";
      }
    }
  };
  sim.spawn(Helper::outer(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(CoroutineTest, UncaughtRootExceptionSurfacesFromRun) {
  Simulator sim;
  sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.delay(1_ms);
    throw std::logic_error("unhandled");
  }(sim));
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(CoroutineTest, JoinWaitsForCompletion) {
  Simulator sim;
  std::vector<int> order;
  auto worker = sim.spawn([](Simulator& s, std::vector<int>& o) -> Task<void> {
    co_await s.delay(10_ms);
    o.push_back(1);
  }(sim, order));
  sim.spawn([](Simulator& s, SpawnHandle w, std::vector<int>& o) -> Task<void> {
    co_await w;
    o.push_back(2);
    co_await s.delay(1_ms);
    o.push_back(3);
  }(sim, worker, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(CoroutineTest, JoinOnFinishedTaskReturnsImmediately) {
  Simulator sim;
  auto worker = sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.delay(1_ms);
  }(sim));
  sim.run();
  ASSERT_TRUE(worker.done());
  bool resumed = false;
  sim.spawn([](SpawnHandle w, bool& r) -> Task<void> {
    co_await w;
    r = true;
  }(worker, resumed));
  sim.run();
  EXPECT_TRUE(resumed);
}

TEST(CoroutineTest, ManyConcurrentTasksInterleave) {
  Simulator sim;
  std::vector<int> done_order;
  for (int i = 0; i < 20; ++i) {
    sim.spawn([](Simulator& s, int id, std::vector<int>& out) -> Task<void> {
      // Task i finishes at (20 - i) ms: reverse completion order.
      co_await s.delay(Duration::millis(20 - id));
      out.push_back(id);
    }(sim, i, done_order));
  }
  sim.run();
  ASSERT_EQ(done_order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(done_order[static_cast<size_t>(i)], 19 - i);
}

TEST(CoroutineTest, LiveRootCountTracksCompletion) {
  Simulator sim;
  sim.spawn([](Simulator& s) -> Task<void> { co_await s.delay(10_ms); }(sim));
  sim.spawn([](Simulator& s) -> Task<void> { co_await s.delay(20_ms); }(sim));
  EXPECT_EQ(sim.live_root_count(), 2u);
  sim.run_until(TimePoint::origin() + 15_ms);
  EXPECT_EQ(sim.live_root_count(), 1u);
  sim.run();
  EXPECT_EQ(sim.live_root_count(), 0u);
}

TEST(CoroutineTest, TeardownWithSuspendedTasksIsSafe) {
  // Tasks left suspended on delays when the simulator is destroyed must not
  // crash or leak (awaiter destructors cancel their timers).
  Simulator sim;
  for (int i = 0; i < 10; ++i) {
    sim.spawn([](Simulator& s) -> Task<void> {
      for (;;) co_await s.delay(1_s);
    }(sim));
  }
  sim.run_until(TimePoint::origin() + 2500_ms);
  // Destructor runs here.
}

TEST(NotifierTest, NotifyOneWakesOldestWaiter) {
  Simulator sim;
  Notifier n{sim};
  std::vector<int> woke;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Notifier& n, int id, std::vector<int>& w) -> Task<void> {
      co_await n.wait();
      w.push_back(id);
    }(n, i, woke));
  }
  sim.run();
  EXPECT_TRUE(woke.empty());
  EXPECT_EQ(n.waiter_count(), 3u);
  EXPECT_EQ(n.notify_one(), 1u);
  sim.run();
  EXPECT_EQ(woke, (std::vector<int>{0}));
  EXPECT_EQ(n.notify_all(), 2u);
  sim.run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));
}

TEST(NotifierTest, NotifyWithNoWaitersIsLost) {
  Simulator sim;
  Notifier n{sim};
  EXPECT_EQ(n.notify_all(), 0u);
  bool woke = false;
  sim.spawn([](Notifier& n, bool& w) -> Task<void> {
    co_await n.wait();
    w = true;
  }(n, woke));
  sim.run();
  EXPECT_FALSE(woke);  // edge-triggered: earlier notify does not count
  n.notify_one();
  sim.run();
  EXPECT_TRUE(woke);
}

TEST(NotifierTest, WaiterDestroyedWhileQueuedDeregisters) {
  Simulator sim;
  Notifier n{sim};
  {
    Simulator inner;
    // Spawn into `sim`, then destroy via scope? Instead: spawn a waiter and
    // tear down the simulator while it is queued; notifier outlives it.
    (void)inner;
  }
  {
    Simulator sim2;
    Notifier n2{sim2};
    sim2.spawn([](Notifier& n) -> Task<void> { co_await n.wait(); }(n2));
    sim2.run();
    EXPECT_EQ(n2.waiter_count(), 1u);
    // sim2 destroyed first would orphan... here n2 outlives sim2's roots:
    // destruction order is n2 then sim2 (reverse declaration), which is the
    // dangerous order — Notifier::~Notifier orphans the queued waiter, and
    // the frame is destroyed later by ~Simulator without touching n2.
  }
  SUCCEED();
}

TEST(GateTest, WaitPassesOnceOpen) {
  Simulator sim;
  Gate g{sim};
  std::vector<int> order;
  sim.spawn([](Gate& g, std::vector<int>& o) -> Task<void> {
    co_await g.wait();
    o.push_back(1);
  }(g, order));
  sim.run();
  EXPECT_TRUE(order.empty());
  g.open();
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  // Late waiter passes immediately.
  sim.spawn([](Gate& g, std::vector<int>& o) -> Task<void> {
    co_await g.wait();
    o.push_back(2);
  }(g, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ChannelTest, SendThenRecv) {
  Simulator sim;
  Channel<int> ch{sim};
  int got = 0;
  sim.spawn([](Channel<int>& ch, int& out) -> Task<void> {
    const auto v = co_await ch.recv();
    out = v.value_or(-1);
  }(ch, got));
  sim.spawn([](Channel<int>& ch) -> Task<void> {
    co_await ch.send(7);
  }(ch));
  sim.run();
  EXPECT_EQ(got, 7);
}

TEST(ChannelTest, RecvBlocksUntilSend) {
  Simulator sim;
  Channel<int> ch{sim};
  bool received = false;
  sim.spawn([](Channel<int>& ch, bool& r) -> Task<void> {
    (void)co_await ch.recv();
    r = true;
  }(ch, received));
  sim.run();
  EXPECT_FALSE(received);
  EXPECT_TRUE(ch.try_send(1));
  sim.run();
  EXPECT_TRUE(received);
}

TEST(ChannelTest, FifoOrder) {
  Simulator sim;
  Channel<int> ch{sim};
  std::vector<int> got;
  sim.spawn([](Channel<int>& ch, std::vector<int>& out) -> Task<void> {
    for (;;) {
      const auto v = co_await ch.recv();
      if (!v) break;
      out.push_back(*v);
    }
  }(ch, got));
  sim.spawn([](Simulator& s, Channel<int>& ch) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await ch.send(i);
      co_await s.delay(1_ms);
    }
    ch.close();
  }(sim, ch));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ChannelTest, BoundedSendBackpressure) {
  Simulator sim;
  Channel<int> ch{sim, 2};
  std::vector<std::int64_t> send_times;
  sim.spawn([](Simulator& s, Channel<int>& ch,
               std::vector<std::int64_t>& times) -> Task<void> {
    for (int i = 0; i < 4; ++i) {
      co_await ch.send(i);
      times.push_back(s.now().ns());
    }
  }(sim, ch, send_times));
  // Slow consumer: one item per 10ms starting at 10ms.
  sim.spawn([](Simulator& s, Channel<int>& ch) -> Task<void> {
    for (int i = 0; i < 4; ++i) {
      co_await s.delay(10_ms);
      (void)co_await ch.recv();
    }
  }(sim, ch));
  sim.run();
  ASSERT_EQ(send_times.size(), 4u);
  EXPECT_EQ(send_times[0], 0);               // fits in capacity
  EXPECT_EQ(send_times[1], 0);               // fits in capacity
  EXPECT_EQ(send_times[2], (10_ms).ns());    // waits for first recv
  EXPECT_EQ(send_times[3], (20_ms).ns());    // waits for second recv
}

TEST(ChannelTest, TrySendRespectsCapacity) {
  Simulator sim;
  Channel<int> ch{sim, 2};
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_TRUE(ch.try_send(2));
  EXPECT_FALSE(ch.try_send(3));
  EXPECT_EQ(ch.size(), 2u);
}

TEST(ChannelTest, TryRecv) {
  Simulator sim;
  Channel<int> ch{sim};
  EXPECT_EQ(ch.try_recv(), std::nullopt);
  ch.try_send(9);
  EXPECT_EQ(ch.try_recv(), std::optional<int>{9});
}

TEST(ChannelTest, CloseDrainsThenNullopt) {
  Simulator sim;
  Channel<int> ch{sim};
  ch.try_send(1);
  ch.try_send(2);
  ch.close();
  std::vector<int> got;
  bool saw_end = false;
  sim.spawn([](Channel<int>& ch, std::vector<int>& out, bool& end) -> Task<void> {
    for (;;) {
      const auto v = co_await ch.recv();
      if (!v) {
        end = true;
        break;
      }
      out.push_back(*v);
    }
  }(ch, got, saw_end));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
  EXPECT_TRUE(saw_end);
}

TEST(ChannelTest, CloseWakesBlockedSender) {
  Simulator sim;
  Channel<int> ch{sim, 1};
  ch.try_send(0);
  bool send_result = true;
  sim.spawn([](Channel<int>& ch, bool& res) -> Task<void> {
    res = co_await ch.send(1);
  }(ch, send_result));
  sim.run();
  EXPECT_TRUE(send_result);  // still suspended... (not yet completed)
  ch.close();
  sim.run();
  EXPECT_FALSE(send_result);
}

TEST(ChannelTest, SendOnClosedFails) {
  Simulator sim;
  Channel<int> ch{sim};
  ch.close();
  EXPECT_FALSE(ch.try_send(1));
  bool res = true;
  sim.spawn([](Channel<int>& ch, bool& r) -> Task<void> {
    r = co_await ch.send(5);
  }(ch, res));
  sim.run();
  EXPECT_FALSE(res);
}

TEST(ChannelTest, MultipleProducersOneConsumer) {
  Simulator sim;
  Channel<int> ch{sim};
  int sum = 0;
  int count = 0;
  sim.spawn([](Channel<int>& ch, int& sum, int& count) -> Task<void> {
    for (;;) {
      const auto v = co_await ch.recv();
      if (!v) break;
      sum += *v;
      ++count;
    }
  }(ch, sum, count));
  for (int p = 0; p < 4; ++p) {
    sim.spawn([](Simulator& s, Channel<int>& ch, int base) -> Task<void> {
      for (int i = 0; i < 10; ++i) {
        co_await s.delay(Duration::micros(100 + base));
        co_await ch.send(base);
      }
    }(sim, ch, p));
  }
  sim.spawn([](Simulator& s, Channel<int>& ch) -> Task<void> {
    co_await s.delay(1_s);
    ch.close();
  }(sim, ch));
  sim.run();
  EXPECT_EQ(count, 40);
  EXPECT_EQ(sum, 10 * (0 + 1 + 2 + 3));
}

}  // namespace
}  // namespace vmig::sim
