// Edge cases of the simulation kernel that the protocol code leans on:
// timer cancellation races, teardown ordering, notifier wake ordering,
// channel close semantics, and determinism under heavy interleaving.

#include <gtest/gtest.h>

#include <vector>

#include "simcore/channel.hpp"
#include "simcore/notifier.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"

namespace vmig::sim {
namespace {

// vmig-lint: c3-begin -- these tests capture stack locals by reference in
// scheduler callbacks on purpose: every callback runs inside sim.run(),
// which is called in the same frame, so nothing outlives its referents
using namespace vmig::sim::literals;

TEST(SimulatorEdgeTest, CancelFromInsideAnEarlierEvent) {
  Simulator sim;
  bool fired = false;
  Simulator::TimerId victim{};
  victim = sim.schedule_after(10_ms, [&] { fired = true; });
  sim.schedule_after(5_ms, [&] { EXPECT_TRUE(sim.cancel(victim)); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorEdgeTest, CancelSelfWhileFiringIsHarmless) {
  Simulator sim;
  Simulator::TimerId self{};
  int count = 0;
  self = sim.schedule_after(1_ms, [&] {
    ++count;
    EXPECT_FALSE(sim.cancel(self));  // already fired: erase returns false
  });
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(SimulatorEdgeTest, RescheduleChainFromHandler) {
  Simulator sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 100) sim.schedule_after(1_ms, hop);
  };
  sim.schedule_after(1_ms, hop);
  sim.run();
  EXPECT_EQ(hops, 100);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 100_ms);
}

TEST(SimulatorEdgeTest, RunUntilWithOnlyCancelledEventsAdvancesClock) {
  Simulator sim;
  const auto id = sim.schedule_after(5_ms, [] {});
  sim.cancel(id);
  sim.run_until(TimePoint::origin() + 50_ms);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 50_ms);
  EXPECT_FALSE(sim.has_pending());
}

TEST(SimulatorEdgeTest, SpawnFromInsideRootTask) {
  Simulator sim;
  std::vector<int> order;
  sim.spawn([](Simulator& s, std::vector<int>& o) -> Task<void> {
    o.push_back(1);
    s.spawn([](Simulator& s2, std::vector<int>& o2) -> Task<void> {
      o2.push_back(2);
      co_await s2.delay(1_ms);
      o2.push_back(4);
    }(s, o));
    co_await s.delay(2_ms);
    o.push_back(5);
    (void)s;
  }(sim, order));
  order.push_back(3);  // after outer spawn returns control
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(SimulatorEdgeTest, JoinerSpawnsAnotherTaskOnWake) {
  // Exercises the reap-safety path: a joiner resumed inline by a finishing
  // root immediately spawns; the finishing root's frame must survive.
  Simulator sim;
  bool inner_done = false;
  auto worker = sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.delay(5_ms);
  }(sim));
  sim.spawn([](Simulator& s, SpawnHandle w, bool& inner) -> Task<void> {
    co_await w;
    s.spawn([](Simulator& s2, bool& inner2) -> Task<void> {
      co_await s2.delay(1_ms);
      inner2 = true;
    }(s, inner));
  }(sim, worker, inner_done));
  sim.run();
  EXPECT_TRUE(inner_done);
}

TEST(SimulatorEdgeTest, ManyRootsTearDownSafely) {
  // Roots suspended across every primitive at destruction time.
  auto make_world = [] {
    auto sim = std::make_unique<Simulator>();
    static Notifier* leak_n = nullptr;  // intentionally ordered inside
    auto n = std::make_unique<Notifier>(*sim);
    auto ch = std::make_unique<Channel<int>>(*sim, 1);
    ch->try_send(0);  // make sends block
    for (int i = 0; i < 5; ++i) {
      sim->spawn([](Simulator& s) -> Task<void> {
        for (;;) co_await s.delay(1_s);
      }(*sim));
      sim->spawn([](Notifier& n) -> Task<void> { co_await n.wait(); }(*n));
      sim->spawn([](Channel<int>& c) -> Task<void> {
        (void)co_await c.send(1);
      }(*ch));
    }
    sim->run_for(100_ms);
    (void)leak_n;
    // Destruction order: channel, notifier, then simulator (roots last).
    ch.reset();
    n.reset();
    sim.reset();
  };
  make_world();
  SUCCEED();
}

TEST(NotifierEdgeTest, NotifyAllWakesInFifoOrder) {
  Simulator sim;
  Notifier n{sim};
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.spawn([](Notifier& n, int id, std::vector<int>& o) -> Task<void> {
      co_await n.wait();
      o.push_back(id);
    }(n, i, order));
  }
  sim.run();
  n.notify_all();
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(NotifierEdgeTest, NotifyOneDuringDrainIsNotLostForQueuedWaiter) {
  Simulator sim;
  Notifier n{sim};
  int woken = 0;
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Notifier& n, int& w) -> Task<void> {
      co_await n.wait();
      ++w;
    }(n, woken));
  }
  sim.run();
  EXPECT_EQ(n.notify_one(), 1u);
  EXPECT_EQ(n.notify_one(), 1u);
  EXPECT_EQ(n.notify_one(), 0u);  // queue drained
  sim.run();
  EXPECT_EQ(woken, 2);
}

TEST(NotifierEdgeTest, WaiterCanRewaitImmediately) {
  Simulator sim;
  Notifier n{sim};
  int wakes = 0;
  sim.spawn([](Notifier& n, int& wakes) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await n.wait();
      ++wakes;
    }
  }(n, wakes));
  sim.run();
  for (int i = 0; i < 3; ++i) {
    n.notify_all();
    sim.run();
  }
  EXPECT_EQ(wakes, 3);
}

TEST(GateEdgeTest, OpenThenImmediateDestroyIsSafe) {
  // The post-copy pending list destroys gates right after opening them;
  // the queued wakeups must not touch the dead gate.
  Simulator sim;
  bool resumed = false;
  auto gate = std::make_unique<Gate>(sim);
  sim.spawn([](Gate& g, bool& r) -> Task<void> {
    co_await g.wait();
    r = true;
  }(*gate, resumed));
  sim.run();
  gate->open();
  gate.reset();  // destroyed before the waiter resumes
  sim.run();
  EXPECT_TRUE(resumed);
}

TEST(GateEdgeTest, DoubleOpenIsIdempotent) {
  Simulator sim;
  Gate g{sim};
  g.open();
  g.open();
  bool passed = false;
  sim.spawn([](Gate& g, bool& p) -> Task<void> {
    co_await g.wait();
    p = true;
  }(g, passed));
  sim.run();
  EXPECT_TRUE(passed);
}

TEST(ChannelEdgeTest, CloseDuringBlockedSendDeliversNothingExtra) {
  Simulator sim;
  Channel<int> ch{sim, 1};
  ch.try_send(1);
  bool send_ok = true;
  sim.spawn([](Channel<int>& ch, bool& ok) -> Task<void> {
    ok = co_await ch.send(2);
  }(ch, send_ok));
  sim.run();
  ch.close();
  sim.run();
  EXPECT_FALSE(send_ok);
  EXPECT_EQ(ch.size(), 1u);  // only the pre-close item remains
}

TEST(ChannelEdgeTest, RecvAfterCloseDrainsEverything) {
  Simulator sim;
  Channel<int> ch{sim, 8};
  for (int i = 0; i < 5; ++i) ch.try_send(i);
  ch.close();
  std::vector<int> got;
  sim.spawn([](Channel<int>& ch, std::vector<int>& g) -> Task<void> {
    for (;;) {
      auto v = co_await ch.recv();
      if (!v) break;
      g.push_back(*v);
    }
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ChannelEdgeTest, CapacityOneHandoffPingPong) {
  Simulator sim;
  Channel<int> ping{sim, 1};
  Channel<int> pong{sim, 1};
  int rounds = 0;
  sim.spawn([](Channel<int>& in, Channel<int>& out, int& r) -> Task<void> {
    for (int i = 0; i < 50; ++i) {
      const auto v = co_await in.recv();
      if (!v) co_return;
      ++r;
      co_await out.send(*v + 1);
    }
  }(ping, pong, rounds));
  sim.spawn([](Channel<int>& out, Channel<int>& in) -> Task<void> {
    co_await out.send(0);
    for (int i = 0; i < 50; ++i) {
      const auto v = co_await in.recv();
      if (!v) co_return;
      if (i < 49) co_await out.send(*v + 1);
    }
  }(ping, pong));
  sim.run();
  EXPECT_EQ(rounds, 50);
}

TEST(DeterminismEdgeTest, FullStackReplayIsBitIdentical) {
  auto trace = [](std::uint64_t seed) {
    Simulator sim;
    Channel<std::uint64_t> ch{sim, 3};
    Notifier n{sim};
    Rng rng{seed};
    std::vector<std::uint64_t> events;
    for (int p = 0; p < 3; ++p) {
      sim.spawn([](Simulator& s, Channel<std::uint64_t>& ch, Rng rng,
                   int id) -> Task<void> {
        for (int i = 0; i < 40; ++i) {
          co_await s.delay(Duration::micros(rng.uniform_u64(500)));
          co_await ch.send(static_cast<std::uint64_t>(id) * 1000 + i);
        }
      }(sim, ch, rng.fork(), p));
    }
    sim.spawn([](Simulator& s, Channel<std::uint64_t>& ch,
                 std::vector<std::uint64_t>& ev) -> Task<void> {
      for (int i = 0; i < 120; ++i) {
        const auto v = co_await ch.recv();
        if (!v) break;
        ev.push_back(*v ^ static_cast<std::uint64_t>(s.now().ns()));
      }
    }(sim, ch, events));
    sim.run();
    return events;
  };
  EXPECT_EQ(trace(77), trace(77));
  EXPECT_NE(trace(77), trace(78));
}

}  // namespace
}  // namespace vmig::sim

// vmig-lint: c3-end
