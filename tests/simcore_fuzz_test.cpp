// Randomized stress of the simulation kernel: many coroutines interleaving
// over channels, notifiers, gates, delays, and nested awaits, with seeds
// swept by TEST_P. Invariants checked: no lost or duplicated channel items,
// deterministic replay, clean drain, and safe teardown mid-flight.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "simcore/channel.hpp"
#include "simcore/notifier.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"

namespace vmig::sim {
namespace {

using namespace vmig::sim::literals;

struct FuzzWorld {
  explicit FuzzWorld(Simulator& sim)
      : ch_a{sim, 3}, ch_b{sim, 1}, n{sim}, produced(0), consumed(0) {}
  Channel<std::uint64_t> ch_a;
  Channel<std::uint64_t> ch_b;
  Notifier n;
  std::uint64_t produced;
  std::uint64_t consumed;
  std::uint64_t checksum_in = 0;
  std::uint64_t checksum_out = 0;
};

Task<void> producer(Simulator& sim, FuzzWorld& w, Rng rng, int items) {
  for (int i = 0; i < items; ++i) {
    co_await sim.delay(Duration::micros(rng.uniform_u64(200)));
    const std::uint64_t v = rng.next_u64() | 1;
    w.checksum_in ^= v;
    ++w.produced;
    co_await w.ch_a.send(v);
    if (rng.bernoulli(0.3)) w.n.notify_one();
  }
}

Task<void> relay(Simulator& sim, FuzzWorld& w, Rng rng) {
  for (;;) {
    auto v = co_await w.ch_a.recv();
    if (!v) break;
    if (rng.bernoulli(0.2)) {
      co_await sim.delay(Duration::micros(rng.uniform_u64(150)));
    }
    co_await w.ch_b.send(*v);
  }
  w.ch_b.close();
}

Task<void> consumer(Simulator& sim, FuzzWorld& w, Rng rng) {
  for (;;) {
    auto v = co_await w.ch_b.recv();
    if (!v) break;
    w.checksum_out ^= *v;
    ++w.consumed;
    if (rng.bernoulli(0.1)) {
      co_await sim.delay(Duration::micros(rng.uniform_u64(100)));
    }
  }
}

Task<void> noise(Simulator& sim, FuzzWorld& w, Rng rng, const bool& stop) {
  // Waits on the notifier and spawns short-lived children, exercising the
  // orphaning and reap paths.
  while (!stop) {
    if (rng.bernoulli(0.5)) {
      co_await w.n.wait();
    } else {
      co_await sim.delay(Duration::micros(50 + rng.uniform_u64(500)));
    }
    sim.spawn([](Simulator& s) -> Task<void> {
      co_await s.delay(10_us);
    }(sim));
  }
}

class KernelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelFuzz, NoLossNoDuplicationCleanDrain) {
  const std::uint64_t seed = GetParam();
  Simulator sim;
  FuzzWorld w{sim};
  Rng root{seed};

  constexpr int kProducers = 4;
  constexpr int kItems = 200;
  int producers_done = 0;
  for (int p = 0; p < kProducers; ++p) {
    sim.spawn([](Simulator& s, FuzzWorld& w, Rng r, int items,
                 int& done) -> Task<void> {
      co_await producer(s, w, r, items);
      ++done;
    }(sim, w, root.fork(), kItems, producers_done));
  }
  sim.spawn(relay(sim, w, root.fork()));
  sim.spawn(consumer(sim, w, root.fork()));
  bool stop_noise = false;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(noise(sim, w, root.fork(), stop_noise));
  }
  // Closer: when all producers finished, close the first channel.
  sim.spawn([](Simulator& s, FuzzWorld& w, int& done, bool& stop) -> Task<void> {
    while (done < kProducers) co_await s.delay(1_ms);
    w.ch_a.close();
    stop = true;
    w.n.notify_all();  // release parked noise tasks
  }(sim, w, producers_done, stop_noise));

  sim.run();

  EXPECT_EQ(w.produced, static_cast<std::uint64_t>(kProducers) * kItems);
  EXPECT_EQ(w.consumed, w.produced);        // nothing lost or duplicated
  EXPECT_EQ(w.checksum_in, w.checksum_out); // and nothing corrupted
  EXPECT_FALSE(sim.has_pending());
  EXPECT_EQ(sim.live_root_count(), 0u);
}

TEST_P(KernelFuzz, DeterministicReplay) {
  auto trace = [&](std::uint64_t seed) {
    Simulator sim;
    FuzzWorld w{sim};
    Rng root{seed};
    int done = 0;
    for (int p = 0; p < 2; ++p) {
      sim.spawn([](Simulator& s, FuzzWorld& w, Rng r, int& d) -> Task<void> {
        co_await producer(s, w, r, 50);
        ++d;
      }(sim, w, root.fork(), done));
    }
    sim.spawn(relay(sim, w, root.fork()));
    sim.spawn(consumer(sim, w, root.fork()));
    sim.spawn([](Simulator& s, FuzzWorld& w, int& d) -> Task<void> {
      while (d < 2) co_await s.delay(1_ms);
      w.ch_a.close();
    }(sim, w, done));
    sim.run();
    return std::pair{sim.events_processed(), sim.now().ns()};
  };
  EXPECT_EQ(trace(GetParam()), trace(GetParam()));
}

TEST_P(KernelFuzz, MidFlightTeardownIsSafe) {
  // Tear the world down at a random moment with everything in flight.
  const std::uint64_t seed = GetParam();
  Rng root{seed};
  {
    Simulator sim;
    FuzzWorld w{sim};
    int done = 0;
    for (int p = 0; p < 4; ++p) {
      sim.spawn([](Simulator& s, FuzzWorld& w, Rng r, int& d) -> Task<void> {
        co_await producer(s, w, r, 1000);
        ++d;
      }(sim, w, root.fork(), done));
    }
    sim.spawn(relay(sim, w, root.fork()));
    sim.spawn(consumer(sim, w, root.fork()));
    sim.run_until(TimePoint::origin() +
                  Duration::micros(root.uniform_u64(20000)));
    // w (channels, notifier) destroyed before sim: the dangerous order the
    // kernel must tolerate (ASan-validated).
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzz,
                         ::testing::Values(3, 17, 29, 101, 1234, 99999));

}  // namespace
}  // namespace vmig::sim
