// Tests for the pluggable log sink and the shared sim-timestamp format.

#include "simcore/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace vmig::sim {
namespace {

/// Restores the global log level and sink on scope exit so tests compose.
class LogStateGuard {
 public:
  LogStateGuard() : level_{Log::level()}, sink_{Log::sink()} {}
  ~LogStateGuard() {
    Log::set_level(level_);
    Log::set_sink(sink_);
  }

 private:
  LogLevel level_;
  std::ostream* sink_;
};

TEST(Log, SinkCapturesFormattedLine) {
  LogStateGuard guard;
  std::ostringstream captured;
  Log::set_sink(&captured);
  Log::set_level(LogLevel::kInfo);

  const TimePoint t = TimePoint::origin() + Duration::millis(1500);
  LogLine(LogLevel::kInfo, t, "tpm") << "iteration " << 3;

  EXPECT_EQ(captured.str(), "[    1.5000s] INFO  tpm: iteration 3\n");
}

TEST(Log, LevelFilteringSuppressesOutput) {
  LogStateGuard guard;
  std::ostringstream captured;
  Log::set_sink(&captured);
  Log::set_level(LogLevel::kWarn);

  const TimePoint t = TimePoint::origin();
  LogLine(LogLevel::kInfo, t, "tpm") << "hidden";
  LogLine(LogLevel::kDebug, t, "tpm") << "also hidden";
  EXPECT_TRUE(captured.str().empty());

  LogLine(LogLevel::kError, t, "tpm") << "visible";
  EXPECT_EQ(captured.str(), "[    0.0000s] ERROR tpm: visible\n");
}

TEST(Log, SinkResetRestoresStderrDefault) {
  LogStateGuard guard;
  std::ostringstream captured;
  Log::set_sink(&captured);
  EXPECT_EQ(Log::sink(), &captured);
  Log::set_sink(nullptr);
  EXPECT_EQ(Log::sink(), nullptr);
}

TEST(Log, StampSharedWithTimelineExporter) {
  // The obs timeline prefixes spans with Log::stamp(), so log lines and
  // trace events correlate textually. Pin the format here.
  EXPECT_EQ(Log::stamp(TimePoint::origin()), "[    0.0000s]");
  EXPECT_EQ(Log::stamp(TimePoint::origin() + Duration::micros(1234567)),
            "[    1.2346s]");
  EXPECT_EQ(Log::stamp(TimePoint::origin() + Duration::seconds(100)),
            "[  100.0000s]");
}

TEST(Log, SequentialWritesAppend) {
  LogStateGuard guard;
  std::ostringstream captured;
  Log::set_sink(&captured);
  Log::set_level(LogLevel::kDebug);

  Log::write(LogLevel::kDebug, TimePoint::origin(), "a", "one");
  Log::write(LogLevel::kInfo, TimePoint::origin() + Duration::seconds(1), "b",
             "two");
  EXPECT_EQ(captured.str(),
            "[    0.0000s] DEBUG a: one\n"
            "[    1.0000s] INFO  b: two\n");
}

}  // namespace
}  // namespace vmig::sim
