#include "simcore/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace vmig::sim {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng r{0};
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 100; ++i) vals.insert(r.next_u64());
  EXPECT_GT(vals.size(), 95u);  // not stuck
}

TEST(RngTest, ForkIndependence) {
  Rng parent{7};
  Rng child = parent.fork();
  // Child stream should not be a shifted copy of parent stream.
  std::vector<std::uint64_t> p, c;
  for (int i = 0; i < 50; ++i) {
    p.push_back(parent.next_u64());
    c.push_back(child.next_u64());
  }
  EXPECT_NE(p, c);
}

TEST(RngTest, UniformU64Bounds) {
  Rng r{3};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform_u64(17), 17u);
  }
  EXPECT_EQ(r.uniform_u64(1), 0u);
  EXPECT_EQ(r.uniform_u64(0), 0u);
}

TEST(RngTest, UniformU64CoversRange) {
  Rng r{5};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_u64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformI64Inclusive) {
  Rng r{9};
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_i64(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    lo_seen |= (v == -3);
    hi_seen |= (v == 3);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(RngTest, UniformDoubleRange) {
  Rng r{11};
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(RngTest, UniformDoubleBounds) {
  Rng r{13};
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform_double(5.0, 6.0);
    ASSERT_GE(v, 5.0);
    ASSERT_LT(v, 6.0);
  }
}

TEST(RngTest, BernoulliEdges) {
  Rng r{17};
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
  EXPECT_FALSE(r.bernoulli(-1.0));
  EXPECT_TRUE(r.bernoulli(2.0));
}

TEST(RngTest, BernoulliRate) {
  Rng r{19};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng r{23};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = r.exponential(4.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, NormalMoments) {
  Rng r{29};
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ParetoBounds) {
  Rng r{31};
  for (int i = 0; i < 10000; ++i) {
    const double v = r.pareto(1.0, 100.0, 1.2);
    ASSERT_GE(v, 0.99);
    ASSERT_LE(v, 100.01);
  }
}

TEST(RngTest, ParetoSkewsLow) {
  Rng r{37};
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (r.pareto(1.0, 100.0, 1.5) < 10.0) ++low;
  }
  EXPECT_GT(low, n / 2);  // heavy head
}

TEST(RngTest, ZipfBoundsAndSkew) {
  Rng r{41};
  const std::uint64_t n = 1000;
  std::uint64_t first_decile = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const auto v = r.zipf(n, 0.8);
    ASSERT_LT(v, n);
    if (v < n / 10) ++first_decile;
  }
  // Skewed: far more than 10% of draws land in the first decile.
  EXPECT_GT(first_decile, static_cast<std::uint64_t>(draws) / 4);
}

TEST(RngTest, ZipfDegenerate) {
  Rng r{43};
  EXPECT_EQ(r.zipf(0, 0.5), 0u);
  EXPECT_EQ(r.zipf(1, 0.5), 0u);
}

TEST(RngTest, WorksWithStdShuffle) {
  Rng r{47};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  std::shuffle(v.begin(), v.end(), r);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SplitMix64KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
  EXPECT_EQ(splitmix64(s2), b);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace vmig::sim
