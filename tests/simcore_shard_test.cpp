// Sharded calendar-queue scheduling: the exact (time, seq) fire-order
// contract must hold for ANY shard assignment. Seed-swept fuzz runs file
// randomized schedule/cancel streams into random shards (including
// cross-shard delay_on handoffs, the link-boundary pattern) and require the
// fired sequence to be identical to a single-shard run of the same stream.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"

namespace vmig::sim {
namespace {

using namespace vmig::sim::literals;

TEST(ShardConfigTest, ConfigureClampsAndResets) {
  Simulator sim;
  EXPECT_EQ(sim.shard_count(), 1u);
  sim.configure_shards(8);
  EXPECT_EQ(sim.shard_count(), 8u);
  sim.configure_shards(0);  // clamped up
  EXPECT_EQ(sim.shard_count(), 1u);
  sim.configure_shards(Simulator::kMaxShards + 100);  // clamped down
  EXPECT_EQ(sim.shard_count(), Simulator::kMaxShards);
}

TEST(ShardConfigTest, ConfigureThrowsWithPendingEvents) {
  Simulator sim;
  sim.schedule_after(1_ms, [] {});
  EXPECT_THROW(sim.configure_shards(4), std::logic_error);
  sim.run();
  sim.configure_shards(4);  // legal once drained
  EXPECT_EQ(sim.shard_count(), 4u);
}

TEST(ShardScopeTest, TimersFileIntoScopedShardAndInherit) {
  Simulator sim;
  sim.configure_shards(4);
  std::vector<int> fired;
  {
    Simulator::ShardScope scope{sim, 2};
    EXPECT_EQ(sim.current_shard(), 2u);
    // vmig-lint: c3-ok -- sim and fired outlive sim.run() in this test frame
    sim.schedule_after(1_ms, [&] {
      fired.push_back(1);
      // Inherited: this handler runs in shard 2, so its children file there.
      EXPECT_EQ(sim.current_shard(), 2u);
      // vmig-lint: c3-ok -- same lifetime argument as the outer lambda
      sim.schedule_after(1_ms, [&] { fired.push_back(2); });
    });
  }
  EXPECT_EQ(sim.current_shard(), 0u);  // scope restored
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.current_shard(), 0u);  // reset between events
}

TEST(ShardScopeTest, OutOfRangeShardClampsToDefault) {
  Simulator sim;
  sim.configure_shards(2);
  Simulator::ShardScope scope{sim, 99};
  EXPECT_EQ(sim.current_shard(), 0u);
}

TEST(ShardHandoffTest, DelayOnResumesInTargetShard) {
  Simulator sim;
  sim.configure_shards(4);
  std::uint32_t resumed_in = 0xffffffffu;
  sim.spawn_on(1, [](Simulator& s, std::uint32_t& out) -> Task<void> {
    // The wake-up timer is filed into shard 3 — the conservative handoff a
    // Link performs at the receiver boundary.
    co_await s.delay_on(3, 2_ms);
    out = s.current_shard();
  }(sim, resumed_in));
  sim.run();
  EXPECT_EQ(resumed_in, 3u);
}

// ------------------------------------------------------------ ordering fuzz

/// Replay one randomized schedule/cancel stream and return the fire order.
/// Every timer records its id; ops are generated identically for every
/// shard count (the RNG stream never depends on the topology), so the fired
/// sequences are comparable element-for-element.
std::vector<std::uint64_t> run_stream(std::uint64_t seed,
                                      std::uint32_t shard_count) {
  Simulator sim;
  if (shard_count > 1) sim.configure_shards(shard_count);
  Rng rng{seed};
  std::vector<std::uint64_t> fired;
  std::vector<Simulator::TimerId> cancellable;

  std::uint64_t next_id = 0;
  // Seed events across shards; each handler reschedules a few followers
  // into random shards, mixing same-time ties, zero delays, far-future
  // overflow entries, and lazy cancellations.
  struct Ctx {
    Simulator& sim;
    Rng& rng;
    std::vector<std::uint64_t>& fired;
    std::vector<Simulator::TimerId>& cancellable;
    std::uint64_t& next_id;
    std::uint32_t shards;
    int budget = 400;
  };
  Ctx ctx{sim, rng, fired, cancellable, next_id, shard_count};

  // std::function recursion through the scheduler.
  struct Gen {
    static void plant(Ctx& c, int fanout) {
      for (int i = 0; i < fanout; ++i) {
        if (c.budget <= 0) return;
        --c.budget;
        const std::uint64_t id = c.next_id++;
        const std::uint32_t target =
            static_cast<std::uint32_t>(c.rng.uniform_u64(c.shards));
        // Delay mix: ties (0), sub-bucket, multi-bucket, and past-the-ring
        // overflow horizons.
        const std::uint64_t pick = c.rng.uniform_u64(100);
        Duration d;
        if (pick < 15) {
          d = Duration::zero();
        } else if (pick < 60) {
          d = Duration::micros(c.rng.uniform_u64(50));
        } else if (pick < 90) {
          d = Duration::millis(c.rng.uniform_u64(20));
        } else {
          d = Duration::millis(100 + c.rng.uniform_u64(200));  // overflow list
        }
        Simulator::ShardScope scope{c.sim, target};
        // vmig-lint: c3-ok -- Ctx outlives sim.run(); see run_stream's frame
        const auto tid = c.sim.schedule_after(d, [&c, id] {
          c.fired.push_back(id);
          if (c.rng.bernoulli(0.6)) plant(c, 1 + static_cast<int>(c.rng.uniform_u64(3)));
          // Lazy cancellation: kill a random armed timer now and then.
          if (!c.cancellable.empty() && c.rng.bernoulli(0.3)) {
            const std::size_t k = c.rng.uniform_u64(c.cancellable.size());
            c.sim.cancel(c.cancellable[k]);
            c.cancellable.erase(c.cancellable.begin() +
                                static_cast<std::ptrdiff_t>(k));
          }
        });
        if (c.rng.bernoulli(0.2)) c.cancellable.push_back(tid);
      }
    }
  };
  Gen::plant(ctx, 24);
  sim.run();
  return fired;
}

class ShardOrderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardOrderFuzz, FireOrderIdenticalAcrossShardCounts) {
  const std::uint64_t seed = GetParam();
  const auto baseline = run_stream(seed, 1);
  ASSERT_FALSE(baseline.empty());
  for (const std::uint32_t shards : {2u, 5u, 16u, 64u}) {
    EXPECT_EQ(run_stream(seed, shards), baseline) << "shards=" << shards;
  }
}

/// Coroutine ping-pong across a shard boundary: two "hosts" exchanging
/// messages via delay_on into each other's shard, racing a same-shard
/// ticker. Exercises the head-key re-registration path when the head of a
/// shard keeps changing from another shard's dispatch context.
std::vector<std::uint64_t> run_pingpong(std::uint64_t seed,
                                        std::uint32_t shard_count) {
  Simulator sim;
  if (shard_count > 1) sim.configure_shards(shard_count);
  Rng rng{seed};
  std::vector<std::uint64_t> log;

  const std::uint32_t sa = 0;
  const std::uint32_t sb = shard_count > 1 ? 1 : 0;
  sim.spawn_on(sa, [](Simulator& s, Rng& r, std::vector<std::uint64_t>& log,
                      std::uint32_t peer) -> Task<void> {
    for (int i = 0; i < 64; ++i) {
      log.push_back(1000 + static_cast<std::uint64_t>(i));
      co_await s.delay_on(peer, Duration::micros(30 + r.uniform_u64(40)));
    }
  }(sim, rng, log, sb));
  sim.spawn_on(sb, [](Simulator& s, Rng& r, std::vector<std::uint64_t>& log,
                      std::uint32_t peer) -> Task<void> {
    for (int i = 0; i < 64; ++i) {
      log.push_back(2000 + static_cast<std::uint64_t>(i));
      co_await s.delay_on(peer, Duration::micros(25 + r.uniform_u64(40)));
    }
  }(sim, rng, log, sa));
  // Same-shard ticker contending with the handoffs at coinciding times.
  sim.spawn_on(sa, [](Simulator& s, std::vector<std::uint64_t>& log) -> Task<void> {
    for (int i = 0; i < 128; ++i) {
      log.push_back(3000 + static_cast<std::uint64_t>(i));
      co_await s.delay(Duration::micros(35));
    }
  }(sim, log));
  sim.run();
  return log;
}

TEST_P(ShardOrderFuzz, LinkHandoffPingPongIdenticalAcrossShardCounts) {
  const std::uint64_t seed = GetParam();
  const auto baseline = run_pingpong(seed, 1);
  for (const std::uint32_t shards : {2u, 4u, 32u}) {
    EXPECT_EQ(run_pingpong(seed, shards), baseline) << "shards=" << shards;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardOrderFuzz,
                         ::testing::Values(3, 17, 29, 101, 1234, 99999));

}  // namespace
}  // namespace vmig::sim
