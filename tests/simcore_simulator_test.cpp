#include "simcore/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace vmig::sim {
namespace {

// vmig-lint: c3-begin -- these tests capture stack locals by reference in
// scheduler callbacks on purpose: every callback runs inside sim.run(),
// which is called in the same frame, so nothing outlives its referents
using namespace vmig::sim::literals;

TEST(SimulatorTest, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_FALSE(sim.has_pending());
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(30_ms, [&] { order.push_back(3); });
  sim.schedule_after(10_ms, [&] { order.push_back(1); });
  sim.schedule_after(20_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::origin() + 30_ms);
}

TEST(SimulatorTest, DebugTraceIsExplicitAndOffByDefault) {
  // The scheduler narration used to hang off getenv("VMIG_SIM_TRACE");
  // it is now an explicit, plumbable switch so behavior is a function of
  // program arguments alone.
  Simulator sim;
  EXPECT_FALSE(sim.debug_trace());

  testing::internal::CaptureStderr();
  sim.schedule_after(1_ms, [] {});
  sim.run();
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

  sim.set_debug_trace(true);
  EXPECT_TRUE(sim.debug_trace());
  testing::internal::CaptureStderr();
  const auto id = sim.schedule_after(1_ms, [] {});
  sim.cancel(id);
  sim.schedule_after(2_ms, [] {});
  sim.run();
  const std::string narration = testing::internal::GetCapturedStderr();
  EXPECT_NE(narration.find("sim: schedule"), std::string::npos);
  EXPECT_NE(narration.find("sim: cancel"), std::string::npos);
  EXPECT_NE(narration.find("sim: fire"), std::string::npos);

  sim.set_debug_trace(false);
  testing::internal::CaptureStderr();
  sim.schedule_after(1_ms, [] {});
  sim.run();
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(SimulatorTest, SameTimeFiresInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(5_ms, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  TimePoint seen{};
  sim.schedule_after(42_ms, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint::origin() + 42_ms);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_after(10_ms, [&] {
    times.push_back(sim.now().to_seconds());
    sim.schedule_after(10_ms, [&] { times.push_back(sim.now().to_seconds()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 0.010);
  EXPECT_DOUBLE_EQ(times[1], 0.020);
}

TEST(SimulatorTest, PastSchedulingClampsToNow) {
  Simulator sim;
  sim.schedule_after(10_ms, [] {});
  sim.run();
  bool fired = false;
  sim.schedule_at(TimePoint::origin(), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 10_ms);  // time never goes back
}

TEST(SimulatorTest, NegativeDelayClampsToZero) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(Duration::millis(-5), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), TimePoint::origin());
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_after(10_ms, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelTwiceReturnsFalse) {
  Simulator sim;
  const auto id = sim.schedule_after(10_ms, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const auto id = sim.schedule_after(10_ms, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, StepProcessesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_after(1_ms, [&] { ++count; });
  sim.schedule_after(2_ms, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, RunUntilStopsAtLimit) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_after(10_ms, [&] { fired.push_back(1); });
  sim.schedule_after(20_ms, [&] { fired.push_back(2); });
  sim.schedule_after(30_ms, [&] { fired.push_back(3); });
  sim.run_until(TimePoint::origin() + 20_ms);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), TimePoint::origin() + 20_ms);
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWithNoEvents) {
  Simulator sim;
  sim.run_until(TimePoint::origin() + 5_s);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 5_s);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.run_for(1_s);
  sim.run_for(2_s);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 3_s);
}

TEST(SimulatorTest, EventsProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_after(Duration::millis(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(SimulatorTest, PendingCountExcludesCancelled) {
  Simulator sim;
  sim.schedule_after(1_ms, [] {});
  const auto id = sim.schedule_after(2_ms, [] {});
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(SimulatorTest, ManyEventsStressOrdering) {
  Simulator sim;
  std::vector<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    // Deliberately scrambled insertion order.
    const auto d = Duration::micros((i * 7919) % 10007);
    sim.schedule_after(d, [&seen, &sim] { seen.push_back(sim.now().ns()); });
  }
  sim.run();
  ASSERT_EQ(seen.size(), 10000u);
  for (size_t i = 1; i < seen.size(); ++i) ASSERT_LE(seen[i - 1], seen[i]);
}

// -- calendar-queue edge cases --
// The pending set is a ring of 8192 buckets x 8.192 us (one "year" = ~67 ms);
// events beyond a year sit in an overflow list swept once per revolution.
// These tests pin the behaviors that geometry could plausibly break.

TEST(SimulatorCalendarTest, FarFutureTimersCrossTheYear) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(5_s, [&] { order.push_back(4); });     // many years out
  sim.schedule_after(1_ms, [&] { order.push_back(1); });    // inside the ring
  sim.schedule_after(100_ms, [&] { order.push_back(2); });  // next revolution
  sim.schedule_after(200_ms, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.now(), TimePoint::origin() + 5_s);
}

TEST(SimulatorCalendarTest, YearBoundaryOrdering) {
  // One ring revolution is 8192 buckets * 8192 ns = 2^26 ns.
  constexpr std::int64_t kYearNs = std::int64_t{1} << 26;
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::nanos(kYearNs + 1), [&] { order.push_back(3); });
  sim.schedule_after(Duration::nanos(kYearNs), [&] { order.push_back(2); });
  sim.schedule_after(Duration::nanos(kYearNs - 1), [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorCalendarTest, SameBucketDifferentTimes) {
  // Distinct nanosecond times mapping to the same 8.192 us bucket must still
  // fire in time order, not insertion order.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::nanos(5000), [&] { order.push_back(2); });
  sim.schedule_after(Duration::nanos(100), [&] { order.push_back(1); });
  sim.schedule_after(Duration::nanos(8000), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorCalendarTest, SameFarTimeFiresInInsertionOrder) {
  // (time, seq) ordering must survive the overflow list and its sweeps.
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(1_s, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorCalendarTest, CancelOverflowTimer) {
  Simulator sim;
  bool near_fired = false, far_fired = false;
  sim.schedule_after(1_ms, [&] { near_fired = true; });
  const auto id = sim.schedule_after(10_s, [&] { far_fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_TRUE(near_fired);
  EXPECT_FALSE(far_fired);
  // The cancelled overflow entry must not hold the clock hostage.
  EXPECT_EQ(sim.now(), TimePoint::origin() + 1_ms);
}

TEST(SimulatorCalendarTest, CancelStorm) {
  Simulator sim;
  std::vector<int> fired;
  std::vector<Simulator::TimerId> ids;
  for (int i = 0; i < 1000; ++i) {
    // Spread across the ring and into overflow.
    const auto d = Duration::micros(static_cast<std::int64_t>(i) * 200);
    ids.push_back(sim.schedule_after(d, [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 1000; i += 2) {
    EXPECT_TRUE(sim.cancel(ids[static_cast<size_t>(i)]));
  }
  EXPECT_EQ(sim.pending_count(), 500u);
  sim.run();
  ASSERT_EQ(fired.size(), 500u);
  for (size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], static_cast<int>(2 * i + 1));
  }
  EXPECT_EQ(sim.events_processed(), 500u);
}

TEST(SimulatorCalendarTest, InvalidAndStaleIdsAreSafe) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(0));  // 0 is the "no timer" sentinel
  EXPECT_FALSE(sim.cancel(~Simulator::TimerId{0}));  // out-of-range slot
  const auto id = sim.schedule_after(1_ms, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));  // fired: generation recycled
  // A recycled slot must not be cancellable through the old id.
  const auto id2 = sim.schedule_after(1_ms, [] {});
  EXPECT_NE(id, id2);
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_TRUE(sim.cancel(id2));
}

TEST(SimulatorCalendarTest, EpochJumpsAcrossIdleGap) {
  // When the ring is empty the epoch must jump straight to the next event's
  // day rather than stepping through thousands of empty buckets.
  Simulator sim;
  std::vector<std::int64_t> seen;
  sim.schedule_after(1_ms, [&] {
    seen.push_back(sim.now().ns());
    // Nested far-future schedule from inside a fire.
    sim.schedule_after(3_s, [&] { seen.push_back(sim.now().ns()); });
  });
  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 1'000'000);
  EXPECT_EQ(seen[1], 3'001'000'000);
}

TEST(SimulatorCalendarTest, RescheduleIntoCurrentBucketWhileFiring) {
  // An event scheduled at the current time from inside a callback runs in
  // the same run(), after the current event (seq order).
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(1_ms, [&] {
    order.push_back(1);
    sim.schedule_after(Duration::zero(), [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorCalendarTest, ManyRevolutionsStress) {
  // Chains of timers that repeatedly lap the ring: each hop is ~half a year,
  // so the epoch crosses bucket 0 dozens of times.
  Simulator sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 100) sim.schedule_after(33_ms, hop);
  };
  sim.schedule_after(33_ms, hop);
  sim.run();
  EXPECT_EQ(hops, 100);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(3300));
}

TEST(SimulatorCalendarTest, PendingCountWithOverflow) {
  Simulator sim;
  sim.schedule_after(1_ms, [] {});
  const auto far = sim.schedule_after(10_s, [] {});
  sim.schedule_after(20_s, [] {});
  EXPECT_EQ(sim.pending_count(), 3u);
  sim.cancel(far);
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_FALSE(sim.has_pending());
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto trace = [] {
    Simulator sim;
    std::vector<std::int64_t> t;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_after(Duration::micros((i * 37) % 101),
                         [&t, &sim] { t.push_back(sim.now().ns()); });
    }
    sim.run();
    return t;
  };
  EXPECT_EQ(trace(), trace());
}

}  // namespace
}  // namespace vmig::sim

// vmig-lint: c3-end
