#include "simcore/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vmig::sim {
namespace {

using namespace vmig::sim::literals;

TEST(SummaryStatsTest, Empty) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryStatsTest, SingleValue) {
  SummaryStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryStatsTest, KnownMoments) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStatsTest, MergeMatchesCombined) {
  SummaryStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStatsTest, MergeWithEmpty) {
  SummaryStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(SummaryStatsTest, Reset) {
  SummaryStats s;
  s.add(10);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(TimeSeriesTest, AddAndSummarize) {
  TimeSeries ts;
  ts.add(TimePoint::origin() + 1_s, 10.0);
  ts.add(TimePoint::origin() + 2_s, 20.0);
  ts.add(TimePoint::origin() + 3_s, 30.0);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.summarize().mean(), 20.0);
}

TEST(TimeSeriesTest, WindowedSummary) {
  TimeSeries ts;
  for (int i = 0; i <= 10; ++i) {
    ts.add(TimePoint::origin() + Duration::seconds(i), static_cast<double>(i));
  }
  const auto s =
      ts.summarize(TimePoint::origin() + 3_s, TimePoint::origin() + 5_s);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(
      ts.mean_in(TimePoint::origin() + 8_s, TimePoint::origin() + 100_s), 9.0);
}

TEST(TimeSeriesTest, ToTextDownsamples) {
  TimeSeries ts;
  for (int i = 0; i < 100; ++i) {
    ts.add(TimePoint::origin() + Duration::millis(i), 1.0);
  }
  const auto text = ts.to_text(10);
  int lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_LE(lines, 11);
  EXPECT_GE(lines, 9);
}

TEST(RateMeterTest, SteadyRate) {
  RateMeter rm{1_s};
  // 100 units every 100ms => 1000 units/s.
  for (int i = 0; i <= 50; ++i) {
    rm.add(TimePoint::origin() + Duration::millis(100 * i), 100.0);
  }
  rm.finish(TimePoint::origin() + 5100_ms);
  ASSERT_GE(rm.series().size(), 4u);
  for (const auto& p : rm.series().points()) {
    EXPECT_NEAR(p.value, 1000.0, 101.0);
  }
  EXPECT_DOUBLE_EQ(rm.total(), 5100.0);
}

TEST(RateMeterTest, IdleWindowsAreZero) {
  RateMeter rm{1_s};
  rm.add(TimePoint::origin(), 500.0);
  rm.add(TimePoint::origin() + 4_s, 500.0);  // 3 idle windows between
  rm.finish(TimePoint::origin() + 5_s);
  const auto& pts = rm.series().points();
  ASSERT_GE(pts.size(), 4u);
  EXPECT_GT(pts.front().value, 0.0);
  bool saw_zero = false;
  for (const auto& p : pts) saw_zero |= (p.value == 0.0);
  EXPECT_TRUE(saw_zero);
}

TEST(RateMeterTest, FinishFlushesPartialWindow) {
  RateMeter rm{10_s};
  rm.add(TimePoint::origin(), 100.0);
  rm.finish(TimePoint::origin() + 2_s);
  ASSERT_EQ(rm.series().size(), 1u);
  EXPECT_NEAR(rm.series().points()[0].value, 50.0, 1e-9);
}

TEST(LatencyHistogramTest, Quantiles) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.add(1_ms);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1_ms);
  EXPECT_EQ(h.max(), 1_ms);
  // Bucketed quantile is within a power-of-two of the truth.
  const auto p50 = h.quantile(0.5);
  EXPECT_GE(p50, 512_us);
  EXPECT_LE(p50, 2_ms);
}

TEST(LatencyHistogramTest, MixedValues) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.add(100_us);
  h.add(100_ms);
  EXPECT_EQ(h.min(), 100_us);
  EXPECT_EQ(h.max(), 100_ms);
  EXPECT_LT(h.quantile(0.5), 1_ms);
  EXPECT_GT(h.quantile(0.999), 10_ms);
}

TEST(LatencyHistogramTest, EmptyAndZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), Duration::zero());
  h.add(Duration::zero());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), Duration::zero());
}

}  // namespace
}  // namespace vmig::sim
