#include "simcore/time.hpp"

#include <gtest/gtest.h>

namespace vmig::sim {
namespace {

using namespace vmig::sim::literals;

TEST(DurationTest, Constructors) {
  EXPECT_EQ(Duration::nanos(5).ns(), 5);
  EXPECT_EQ(Duration::micros(5).ns(), 5000);
  EXPECT_EQ(Duration::millis(5).ns(), 5'000'000);
  EXPECT_EQ(Duration::seconds(5).ns(), 5'000'000'000LL);
  EXPECT_EQ(Duration::minutes(2).ns(), 120'000'000'000LL);
  EXPECT_EQ(Duration::zero().ns(), 0);
}

TEST(DurationTest, FromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds(1.5).ns(), 1'500'000'000LL);
  EXPECT_EQ(Duration::from_seconds(0.5e-9).ns(), 1);       // rounds up
  EXPECT_EQ(Duration::from_seconds(0.4e-9).ns(), 0);       // rounds down
  EXPECT_EQ(Duration::from_seconds(-1.5).ns(), -1'500'000'000LL);
}

TEST(DurationTest, Literals) {
  EXPECT_EQ((5_ns).ns(), 5);
  EXPECT_EQ((5_us).ns(), 5000);
  EXPECT_EQ((5_ms).ns(), 5'000'000);
  EXPECT_EQ((5_s).ns(), 5'000'000'000LL);
  EXPECT_EQ((1.5_s).ns(), 1'500'000'000LL);
  EXPECT_EQ((2_min).ns(), 120'000'000'000LL);
}

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ((3_ms + 2_ms).ns(), (5_ms).ns());
  EXPECT_EQ((3_ms - 2_ms).ns(), (1_ms).ns());
  EXPECT_EQ((3_ms * 4).ns(), (12_ms).ns());
  EXPECT_EQ((12_ms / 4).ns(), (3_ms).ns());
  EXPECT_DOUBLE_EQ(10_s / 4_s, 2.5);
  Duration d = 1_s;
  d += 500_ms;
  EXPECT_EQ(d, 1500_ms);
  d -= 1_s;
  EXPECT_EQ(d, 500_ms);
  EXPECT_EQ(-d, Duration::millis(-500));
}

TEST(DurationTest, Comparison) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_LE(2_ms, 2_ms);
  EXPECT_GT(3_ms, 2_ms);
  EXPECT_EQ(1000_us, 1_ms);
  EXPECT_NE(999_us, 1_ms);
}

TEST(DurationTest, Conversions) {
  EXPECT_DOUBLE_EQ((1500_ms).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ((1500_us).to_millis(), 1.5);
}

TEST(DurationTest, Scaled) {
  EXPECT_EQ((10_s).scaled(0.5), 5_s);
  EXPECT_EQ((10_s).scaled(1.37), Duration::from_seconds(13.7));
}

TEST(DurationTest, StrPicksUnit) {
  EXPECT_EQ((5_ns).str(), "5ns");
  EXPECT_NE((5_us).str().find("us"), std::string::npos);
  EXPECT_NE((5_ms).str().find("ms"), std::string::npos);
  EXPECT_NE((5_s).str().find("s"), std::string::npos);
  EXPECT_NE((10_min).str().find("min"), std::string::npos);
}

TEST(TimePointTest, Basics) {
  TimePoint t0 = TimePoint::origin();
  EXPECT_EQ(t0.ns(), 0);
  TimePoint t1 = t0 + 5_s;
  EXPECT_EQ(t1.ns(), 5'000'000'000LL);
  EXPECT_EQ(t1 - t0, 5_s);
  EXPECT_EQ(t1 - 2_s, t0 + 3_s);
  EXPECT_LT(t0, t1);
  TimePoint t2 = t1;
  t2 += 1_s;
  EXPECT_EQ(t2 - t1, 1_s);
  EXPECT_DOUBLE_EQ(t2.to_seconds(), 6.0);
}

TEST(TimePointTest, FromNs) {
  EXPECT_EQ(TimePoint::from_ns(123).ns(), 123);
  EXPECT_GT(TimePoint::max(), TimePoint::from_ns(1LL << 62));
}

}  // namespace
}  // namespace vmig::sim
