#include <gtest/gtest.h>

#include <vector>

#include "storage/block.hpp"
#include "storage/disk_model.hpp"
#include "storage/disk_scheduler.hpp"
#include "storage/virtual_disk.hpp"

namespace vmig::storage {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::Task;
using sim::TimePoint;
using namespace vmig::sim::literals;

TEST(GeometryTest, Sizes) {
  const auto g = Geometry::from_mib(40960);  // 40 GiB
  EXPECT_EQ(g.block_size, 4096u);
  EXPECT_EQ(g.block_count, 10485760u);
  EXPECT_EQ(g.total_bytes(), 40ull * kGiB);
  EXPECT_DOUBLE_EQ(g.total_mib(), 40960.0);
  EXPECT_TRUE(g.contains(g.block_count - 1));
  EXPECT_FALSE(g.contains(g.block_count));
}

TEST(GeometryTest, SectorGranularity) {
  const auto g = Geometry::from_mib(32768, kSectorSize);
  EXPECT_EQ(g.block_count, 32ull * kGiB / 512);
}

TEST(BlockRangeTest, Basics) {
  BlockRange r{100, 50};
  EXPECT_EQ(r.end(), 150u);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.bytes(4096), 50u * 4096u);
  EXPECT_TRUE((BlockRange{0, 0}).empty());
}

TEST(DiskModelTest, SequentialTransferTime) {
  DiskModelParams p;
  p.seq_read_mbps = 100.0;
  p.request_overhead = Duration::zero();
  p.seek = Duration::millis(10);
  DiskModel m{p};
  // 100 MiB at 100 MiB/s = 1 s.
  EXPECT_EQ(m.transfer_time(IoOp::kRead, 100 * kMiB), 1_s);
}

TEST(DiskModelTest, SeekChargedOnlyWhenNonSequential) {
  DiskModelParams p;
  p.seq_read_mbps = 100.0;
  p.request_overhead = Duration::zero();
  p.seek = Duration::millis(10);
  p.seq_gap_blocks = 4;
  DiskModel m{p};
  const BlockRange r{1000, 1};
  const auto seq = m.service_time(IoOp::kRead, r, /*last_end=*/1000, 4096);
  const auto near = m.service_time(IoOp::kRead, r, /*last_end=*/997, 4096);
  const auto far = m.service_time(IoOp::kRead, r, /*last_end=*/0, 4096);
  EXPECT_EQ(seq, near);
  EXPECT_EQ(far - seq, Duration::millis(10));
}

TEST(DiskModelTest, WriteSlowerThanRead) {
  DiskModelParams p;
  p.seq_read_mbps = 100.0;
  p.seq_write_mbps = 50.0;
  DiskModel m{p};
  EXPECT_GT(m.transfer_time(IoOp::kWrite, kMiB), m.transfer_time(IoOp::kRead, kMiB));
}

TEST(DiskSchedulerTest, SequentialStreamHitsModelBandwidth) {
  Simulator sim;
  DiskModelParams p;
  p.seq_read_mbps = 64.0;
  p.request_overhead = Duration::zero();
  DiskScheduler sched{sim, DiskModel{p}};
  // Read 64 MiB in 1 MiB requests, back to back.
  sim.spawn([](Simulator& s, DiskScheduler& d) -> Task<void> {
    for (int i = 0; i < 64; ++i) {
      co_await d.execute(IoOp::kRead, BlockRange{static_cast<BlockId>(i) * 256, 256},
                         4096, IoSource::kMigration);
    }
    (void)s;
  }(sim, sched));
  sim.run();
  EXPECT_NEAR(sim.now().to_seconds(), 1.0, 0.01);
  EXPECT_EQ(sched.bytes_transferred(IoSource::kMigration), 64 * kMiB);
  EXPECT_EQ(sched.requests_completed(), 64u);
}

TEST(DiskSchedulerTest, ContentionSharesBandwidth) {
  // Two streams each wanting full bandwidth finish in ~2x the solo time.
  Simulator sim;
  DiskModelParams p;
  p.seq_read_mbps = 100.0;
  p.request_overhead = Duration::zero();
  p.seek = Duration::zero();
  DiskScheduler sched{sim, DiskModel{p}};
  TimePoint done_a{}, done_b{};
  auto stream = [](DiskScheduler& d, Simulator& s, BlockId base,
                   TimePoint& done) -> Task<void> {
    for (int i = 0; i < 50; ++i) {
      co_await d.execute(IoOp::kRead, BlockRange{base + static_cast<BlockId>(i) * 256, 256},
                         4096, IoSource::kGuest);
    }
    done = s.now();
  };
  sim.spawn(stream(sched, sim, 0, done_a));
  sim.spawn(stream(sched, sim, 1u << 20, done_b));
  sim.run();
  // 100 MiB total at 100 MiB/s => ~1s, both finish near the end.
  EXPECT_NEAR(sim.now().to_seconds(), 1.0, 0.05);
  EXPECT_GT(done_a.to_seconds(), 0.9);
  EXPECT_GT(done_b.to_seconds(), 0.9);
}

TEST(DiskSchedulerTest, QueueingDelaysLaterRequest) {
  Simulator sim;
  DiskModelParams p;
  p.seq_read_mbps = 1.0;  // 1 MiB/s: 1 MiB takes 1 s
  p.request_overhead = Duration::zero();
  p.seek = Duration::zero();
  DiskScheduler sched{sim, DiskModel{p}};
  TimePoint first{}, second{};
  sim.spawn([](DiskScheduler& d, Simulator& s, TimePoint& t) -> Task<void> {
    co_await d.execute(IoOp::kRead, BlockRange{0, 256}, 4096, IoSource::kGuest);
    t = s.now();
  }(sched, sim, first));
  sim.spawn([](DiskScheduler& d, Simulator& s, TimePoint& t) -> Task<void> {
    co_await d.execute(IoOp::kRead, BlockRange{256, 256}, 4096, IoSource::kGuest);
    t = s.now();
  }(sched, sim, second));
  sim.run();
  EXPECT_NEAR(first.to_seconds(), 1.0, 1e-6);
  EXPECT_NEAR(second.to_seconds(), 2.0, 1e-6);
}

TEST(DiskSchedulerTest, UtilizationAndBusyTime) {
  Simulator sim;
  DiskModelParams p;
  p.seq_read_mbps = 10.0;
  p.request_overhead = Duration::zero();
  p.seek = Duration::zero();
  DiskScheduler sched{sim, DiskModel{p}};
  sim.spawn([](DiskScheduler& d) -> Task<void> {
    co_await d.execute(IoOp::kRead, BlockRange{0, 2560}, 4096, IoSource::kGuest);
  }(sched));
  sim.run();
  EXPECT_NEAR(sched.busy_time().to_seconds(), 1.0, 1e-6);
  EXPECT_NEAR(sched.utilization(), 1.0, 1e-6);
  EXPECT_EQ(sched.latency().count(), 1u);
  EXPECT_NEAR(sched.latency().max().to_seconds(), 1.0, 0.5);
}

TEST(VirtualDiskTest, FreshDiskIsZero) {
  Simulator sim;
  VirtualDisk d{sim, Geometry::from_blocks(100)};
  for (BlockId b = 0; b < 100; ++b) EXPECT_EQ(d.token(b), kZeroBlockToken);
}

TEST(VirtualDiskTest, WriteStampsFreshTokens) {
  Simulator sim;
  VirtualDisk d{sim, Geometry::from_blocks(100)};
  sim.spawn([](VirtualDisk& d) -> Task<void> {
    co_await d.write(BlockRange{10, 5});
  }(d));
  sim.run();
  std::set<ContentToken> toks;
  for (BlockId b = 10; b < 15; ++b) {
    EXPECT_NE(d.token(b), kZeroBlockToken);
    toks.insert(d.token(b));
  }
  EXPECT_EQ(toks.size(), 5u);  // all distinct
  EXPECT_EQ(d.token(9), kZeroBlockToken);
  EXPECT_EQ(d.token(15), kZeroBlockToken);
}

TEST(VirtualDiskTest, RewriteChangesToken) {
  Simulator sim;
  VirtualDisk d{sim, Geometry::from_blocks(10)};
  sim.spawn([](VirtualDisk& d) -> Task<void> {
    co_await d.write(BlockRange{0, 1});
  }(d));
  sim.run();
  const auto t1 = d.token(0);
  sim.spawn([](VirtualDisk& d) -> Task<void> {
    co_await d.write(BlockRange{0, 1});
  }(d));
  sim.run();
  EXPECT_NE(d.token(0), t1);
}

TEST(VirtualDiskTest, TokensUniqueAcrossDisks) {
  Simulator sim;
  VirtualDisk a{sim, Geometry::from_blocks(10)};
  VirtualDisk b{sim, Geometry::from_blocks(10)};
  sim.spawn([](VirtualDisk& a, VirtualDisk& b) -> Task<void> {
    co_await a.write(BlockRange{0, 1});
    co_await b.write(BlockRange{0, 1});
  }(a, b));
  sim.run();
  EXPECT_NE(a.token(0), b.token(0));
}

TEST(VirtualDiskTest, WriteTokensInstallsContent) {
  Simulator sim;
  VirtualDisk src{sim, Geometry::from_blocks(20)};
  VirtualDisk dst{sim, Geometry::from_blocks(20)};
  sim.spawn([](VirtualDisk& src, VirtualDisk& dst) -> Task<void> {
    co_await src.write(BlockRange{0, 20});
    const auto toks = src.snapshot_tokens(BlockRange{0, 20});
    co_await dst.write_tokens(BlockRange{0, 20}, toks);
  }(src, dst));
  sim.run();
  EXPECT_TRUE(src.content_equals(dst));
  EXPECT_TRUE(dst.diff_blocks(src).empty());
}

TEST(VirtualDiskTest, DiffBlocksFindsDivergence) {
  Simulator sim;
  VirtualDisk a{sim, Geometry::from_blocks(10)};
  VirtualDisk b{sim, Geometry::from_blocks(10)};
  sim.spawn([](VirtualDisk& a) -> Task<void> {
    co_await a.write(BlockRange{3, 2});
  }(a));
  sim.run();
  const auto diff = a.diff_blocks(b);
  EXPECT_EQ(diff, (std::vector<BlockId>{3, 4}));
  EXPECT_FALSE(a.content_equals(b));
}

TEST(VirtualDiskTest, PayloadModeRoundTrip) {
  Simulator sim;
  VirtualDisk d{sim, Geometry::from_blocks(10, 512), {}, /*store_payloads=*/true};
  std::vector<std::byte> data(512 * 2);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i & 0xff);
  sim.spawn([](VirtualDisk& d, std::span<const std::byte> bytes) -> Task<void> {
    co_await d.write_bytes(BlockRange{4, 2}, bytes);
  }(d, data));
  sim.run();
  const auto p0 = d.payload(4);
  const auto p1 = d.payload(5);
  ASSERT_EQ(p0.size(), 512u);
  ASSERT_EQ(p1.size(), 512u);
  EXPECT_TRUE(std::equal(p0.begin(), p0.end(), data.begin()));
  EXPECT_TRUE(std::equal(p1.begin(), p1.end(), data.begin() + 512));
  EXPECT_EQ(d.token(4), VirtualDisk::hash_bytes({data.data(), 512}));
}

TEST(VirtualDiskTest, IdenticalPayloadsGiveIdenticalTokens) {
  Simulator sim;
  VirtualDisk d{sim, Geometry::from_blocks(4, 512), {}, true};
  std::vector<std::byte> data(512, std::byte{7});
  sim.spawn([](VirtualDisk& d, std::span<const std::byte> bytes) -> Task<void> {
    co_await d.write_bytes(BlockRange{0, 1}, bytes);
    co_await d.write_bytes(BlockRange{2, 1}, bytes);
  }(d, data));
  sim.run();
  EXPECT_EQ(d.token(0), d.token(2));
  EXPECT_NE(d.token(0), kZeroBlockToken);
}

TEST(VirtualDiskTest, GuestWritesGenerateDistinctPayloads) {
  Simulator sim;
  VirtualDisk d{sim, Geometry::from_blocks(4, 512), {}, true};
  sim.spawn([](VirtualDisk& d) -> Task<void> {
    co_await d.write(BlockRange{0, 2});
  }(d));
  sim.run();
  const auto p0 = d.payload(0);
  const auto p1 = d.payload(1);
  ASSERT_EQ(p0.size(), 512u);
  EXPECT_FALSE(std::equal(p0.begin(), p0.end(), p1.begin()));
}

TEST(VirtualDiskTest, HashAvoidsZeroSentinel) {
  // Any real content hash must differ from the never-written sentinel.
  std::vector<std::byte> data(64, std::byte{0});
  EXPECT_NE(VirtualDisk::hash_bytes(data), kZeroBlockToken);
}

TEST(VirtualDiskTest, TimedIoContendsThroughScheduler) {
  Simulator sim;
  DiskModelParams p;
  p.seq_read_mbps = 4.0;
  p.seq_write_mbps = 4.0;
  p.request_overhead = Duration::zero();
  p.seek = Duration::zero();
  VirtualDisk d{sim, Geometry::from_blocks(4096), p};
  sim.spawn([](VirtualDisk& d) -> Task<void> {
    co_await d.write(BlockRange{0, 1024});  // 4 MiB at 4 MiB/s = 1 s
  }(d));
  sim.run();
  EXPECT_NEAR(sim.now().to_seconds(), 1.0, 1e-6);
  EXPECT_EQ(d.scheduler().bytes_transferred(IoSource::kGuest), 4 * kMiB);
}

}  // namespace
}  // namespace vmig::storage
