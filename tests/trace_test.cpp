#include <gtest/gtest.h>

#include <sstream>

#include "trace/io_trace.hpp"

namespace vmig::trace {
namespace {

using storage::BlockRange;
using storage::IoOp;
using namespace vmig::sim::literals;

sim::TimePoint at(double s) {
  return sim::TimePoint::origin() + sim::Duration::from_seconds(s);
}

TEST(IoTraceTest, RecordAndCount) {
  IoTrace t;
  t.record(at(0.1), IoOp::kRead, BlockRange{0, 4});
  t.record(at(0.2), IoOp::kWrite, BlockRange{10, 2});
  t.record(at(0.3), IoOp::kWrite, BlockRange{12, 1});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.count(IoOp::kRead), 1u);
  EXPECT_EQ(t.count(IoOp::kWrite), 2u);
  EXPECT_EQ(t.bytes(IoOp::kWrite, 4096), 3u * 4096u);
  EXPECT_EQ(t.bytes(IoOp::kRead, 4096), 4u * 4096u);
}

TEST(IoTraceTest, LocalityNoRewrites) {
  IoTrace t;
  t.record(at(0), IoOp::kWrite, BlockRange{0, 4});
  t.record(at(1), IoOp::kWrite, BlockRange{4, 4});
  const auto s = t.analyze_writes(100);
  EXPECT_EQ(s.write_ops, 2u);
  EXPECT_EQ(s.rewrite_ops, 0u);
  EXPECT_DOUBLE_EQ(s.rewrite_ratio(), 0.0);
  EXPECT_EQ(s.distinct_blocks, 8u);
  EXPECT_EQ(s.blocks_written, 8u);
}

TEST(IoTraceTest, LocalityFullRewrite) {
  IoTrace t;
  t.record(at(0), IoOp::kWrite, BlockRange{0, 4});
  t.record(at(1), IoOp::kWrite, BlockRange{0, 4});
  t.record(at(2), IoOp::kWrite, BlockRange{0, 4});
  const auto s = t.analyze_writes(100);
  EXPECT_EQ(s.write_ops, 3u);
  EXPECT_EQ(s.rewrite_ops, 2u);
  EXPECT_NEAR(s.rewrite_ratio(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(s.distinct_blocks, 4u);
  EXPECT_EQ(s.rewritten_blocks, 8u);
  EXPECT_EQ(s.redundant_bytes(4096), 8u * 4096u);
}

TEST(IoTraceTest, LocalityPartialOverlapCountsOpOnce) {
  IoTrace t;
  t.record(at(0), IoOp::kWrite, BlockRange{0, 4});
  t.record(at(1), IoOp::kWrite, BlockRange{3, 4});  // one block overlaps
  const auto s = t.analyze_writes(100);
  EXPECT_EQ(s.rewrite_ops, 1u);
  EXPECT_EQ(s.rewritten_blocks, 1u);
  EXPECT_EQ(s.distinct_blocks, 7u);
}

TEST(IoTraceTest, ReadsDoNotAffectLocality) {
  IoTrace t;
  t.record(at(0), IoOp::kRead, BlockRange{0, 4});
  t.record(at(1), IoOp::kWrite, BlockRange{0, 4});
  const auto s = t.analyze_writes(100);
  EXPECT_EQ(s.write_ops, 1u);
  EXPECT_EQ(s.rewrite_ops, 0u);
}

TEST(IoTraceTest, SaveLoadRoundTrip) {
  IoTrace t;
  t.record(at(0.5), IoOp::kRead, BlockRange{123, 7});
  t.record(at(1.25), IoOp::kWrite, BlockRange{456, 3});
  std::stringstream ss;
  t.save(ss);
  const IoTrace back = IoTrace::load(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.events()[0].op, IoOp::kRead);
  EXPECT_EQ(back.events()[0].range.start, 123u);
  EXPECT_EQ(back.events()[0].range.count, 7u);
  EXPECT_NEAR(back.events()[0].t.to_seconds(), 0.5, 1e-6);
  EXPECT_EQ(back.events()[1].op, IoOp::kWrite);
  EXPECT_NEAR(back.events()[1].t.to_seconds(), 1.25, 1e-6);
}

TEST(IoTraceTest, LoadRejectsGarbage) {
  std::stringstream ss{"0.5 X 1 2\n"};
  EXPECT_THROW(IoTrace::load(ss), std::runtime_error);
  std::stringstream ss2{"not numbers at all\n"};
  EXPECT_THROW(IoTrace::load(ss2), std::runtime_error);
}

TEST(IoTraceTest, LoadSkipsBlankLines) {
  std::stringstream ss{"\n0.5 W 1 2\n\n"};
  const IoTrace t = IoTrace::load(ss);
  EXPECT_EQ(t.size(), 1u);
}

TEST(IoTraceTest, EmptyTraceStats) {
  IoTrace t;
  const auto s = t.analyze_writes(10);
  EXPECT_EQ(s.write_ops, 0u);
  EXPECT_DOUBLE_EQ(s.rewrite_ratio(), 0.0);
}

}  // namespace
}  // namespace vmig::trace
