// The umbrella header must compile standalone and expose the whole API.

#include "vmig.hpp"

#include <gtest/gtest.h>

namespace {

using namespace vmig;
using namespace vmig::sim::literals;

TEST(UmbrellaTest, EndToEndThroughSingleInclude) {
  sim::Simulator sim;
  hv::Host a{sim, "a", storage::Geometry::from_mib(64)};
  hv::Host b{sim, "b", storage::Geometry::from_mib(64)};
  hv::Host::interconnect(a, b);
  vm::Domain guest{sim, 1, "g", 8};
  a.attach_domain(guest);
  core::MigrationManager mgr{sim};
  core::MigrationReport rep;
  sim.spawn([](core::MigrationManager& mgr, vm::Domain& g, hv::Host& a,
               hv::Host& b, core::MigrationReport& out) -> sim::Task<void> {
    out = (co_await mgr.migrate({.domain = &g, .from = &a, .to = &b})).report;
  }(mgr, guest, a, b, rep));
  sim.run();
  EXPECT_TRUE(rep.disk_consistent);
  EXPECT_TRUE(rep.memory_consistent);
  EXPECT_FALSE(core::to_json(rep).empty());
}

TEST(UmbrellaTest, BuilderAndOrchestratorThroughSingleInclude) {
  // The fluent config builder and the cluster layer must both be reachable
  // through vmig.hpp alone.
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, {.hosts = 2, .vbd_mib = 16,
                                    .guest_mem_mib = 4}};
  vm::Domain& g = tb.add_vm("g", 0);
  tb.prefill_disks();

  const core::MigrationConfig cfg = core::MigrationConfig::build()
                                        .bitmap(core::BitmapKind::kFlat)
                                        .disk_chunk_blocks(64)
                                        .abort_on_non_convergence(false)
                                        .done();
  cluster::Orchestrator orch{sim, tb.manager(), {}};
  orch.submit({.domain = &g, .from = &tb.host(0), .to = &tb.host(1),
               .config = cfg});
  orch.drain();
  EXPECT_TRUE(orch.all_terminal());
  EXPECT_EQ(orch.jobs_completed(), 1u);
  EXPECT_TRUE(orch.job(0).outcome.ok());
}

}  // namespace
