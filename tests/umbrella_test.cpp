// The umbrella header must compile standalone and expose the whole API.

#include "vmig.hpp"

#include <gtest/gtest.h>

namespace {

using namespace vmig;
using namespace vmig::sim::literals;

TEST(UmbrellaTest, EndToEndThroughSingleInclude) {
  sim::Simulator sim;
  hv::Host a{sim, "a", storage::Geometry::from_mib(64)};
  hv::Host b{sim, "b", storage::Geometry::from_mib(64)};
  hv::Host::interconnect(a, b);
  vm::Domain guest{sim, 1, "g", 8};
  a.attach_domain(guest);
  core::MigrationManager mgr{sim};
  core::MigrationReport rep;
  sim.spawn([](core::MigrationManager& mgr, vm::Domain& g, hv::Host& a,
               hv::Host& b, core::MigrationReport& out) -> sim::Task<void> {
    out = co_await mgr.migrate(g, a, b);
  }(mgr, guest, a, b, rep));
  sim.run();
  EXPECT_TRUE(rep.disk_consistent);
  EXPECT_TRUE(rep.memory_consistent);
  EXPECT_FALSE(core::to_json(rep).empty());
}

}  // namespace
