#include <gtest/gtest.h>

#include "simcore/simulator.hpp"
#include "storage/virtual_disk.hpp"
#include "vm/blk_backend.hpp"
#include "vm/domain.hpp"
#include "vm/guest_memory.hpp"

namespace vmig::vm {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::Task;
using storage::BlockRange;
using storage::Geometry;
using storage::IoOp;
using namespace vmig::sim::literals;

TEST(GuestMemoryTest, Layout) {
  GuestMemory m{512};  // 512 MiB
  EXPECT_EQ(m.page_count(), 131072u);
  EXPECT_EQ(m.page_size(), 4096u);
  EXPECT_EQ(m.total_bytes(), 512ull * 1024 * 1024);
}

TEST(GuestMemoryTest, WriteBumpsVersion) {
  GuestMemory m{1};
  EXPECT_EQ(m.version(0), 0u);
  m.write_page(0);
  const auto v1 = m.version(0);
  EXPECT_GT(v1, 0u);
  m.write_page(0);
  EXPECT_GT(m.version(0), v1);
  EXPECT_EQ(m.write_count(), 2u);
}

TEST(GuestMemoryTest, DirtyLogOnlyWhenEnabled) {
  GuestMemory m{1};
  m.write_page(3);
  EXPECT_EQ(m.dirty_page_count(), 0u);
  m.enable_dirty_log();
  m.write_page(4);
  m.write_page(5);
  EXPECT_EQ(m.dirty_page_count(), 2u);
  m.disable_dirty_log();
  m.write_page(6);
  EXPECT_EQ(m.dirty_page_count(), 2u);
}

TEST(GuestMemoryTest, EnableResetsLog) {
  GuestMemory m{1};
  m.enable_dirty_log();
  m.write_page(1);
  m.enable_dirty_log();
  EXPECT_EQ(m.dirty_page_count(), 0u);
}

TEST(GuestMemoryTest, TakeDirtyAndReset) {
  GuestMemory m{1};
  m.enable_dirty_log();
  m.write_page(10);
  m.write_page(20);
  const auto snap = m.take_dirty_and_reset();
  EXPECT_EQ(snap.count_set(), 2u);
  EXPECT_TRUE(snap.test(10));
  EXPECT_EQ(m.dirty_page_count(), 0u);
  m.write_page(30);
  EXPECT_EQ(m.dirty_page_count(), 1u);  // logging continues after take
}

TEST(GuestMemoryTest, ContentEqualsAndApply) {
  GuestMemory a{1}, b{1};
  EXPECT_TRUE(a.content_equals(b));
  a.write_page(7);
  EXPECT_FALSE(a.content_equals(b));
  b.apply_page(7, a.version(7));
  EXPECT_TRUE(a.content_equals(b));
}

TEST(VCpuStateTest, TouchAndWire) {
  VCpuState c;
  const auto v = c.version;
  c.touch();
  EXPECT_GT(c.version, v);
  EXPECT_EQ(c.wire_bytes(), VCpuState::kWireBytes);
}

class BlkBackendTest : public ::testing::Test {
 protected:
  BlkBackendTest()
      : disk_{sim_, Geometry::from_blocks(1024)}, be_{sim_, disk_, 1} {}

  Simulator sim_;
  storage::VirtualDisk disk_;
  BlkBackend be_;
};

TEST_F(BlkBackendTest, WritesReachDisk) {
  sim_.spawn([](BlkBackend& be) -> Task<void> {
    co_await be.submit(1, IoOp::kWrite, BlockRange{5, 3});
  }(be_));
  sim_.run();
  EXPECT_NE(disk_.token(5), storage::kZeroBlockToken);
  EXPECT_NE(disk_.token(7), storage::kZeroBlockToken);
  EXPECT_EQ(be_.guest_writes(), 1u);
  EXPECT_EQ(be_.guest_write_bytes(), 3u * 4096u);
}

TEST_F(BlkBackendTest, TrackingRecordsServedDomainWrites) {
  be_.start_write_tracking(core::BitmapKind::kLayered);
  sim_.spawn([](BlkBackend& be) -> Task<void> {
    co_await be.submit(1, IoOp::kWrite, BlockRange{10, 2});
    co_await be.submit(1, IoOp::kRead, BlockRange{50, 1});   // reads not tracked
    co_await be.submit(2, IoOp::kWrite, BlockRange{20, 2});  // other domain
  }(be_));
  sim_.run();
  EXPECT_EQ(be_.dirty_block_count(), 2u);
  const auto bm = be_.snapshot_dirty();
  EXPECT_TRUE(bm.test(10));
  EXPECT_TRUE(bm.test(11));
  EXPECT_FALSE(bm.test(20));
  EXPECT_FALSE(bm.test(50));
}

TEST_F(BlkBackendTest, SnapshotAndResetClearsButKeepsTracking) {
  be_.start_write_tracking(core::BitmapKind::kFlat);
  sim_.spawn([](BlkBackend& be) -> Task<void> {
    co_await be.submit(1, IoOp::kWrite, BlockRange{1, 1});
  }(be_));
  sim_.run();
  const auto snap = be_.snapshot_dirty_and_reset();
  EXPECT_EQ(snap.count_set(), 1u);
  EXPECT_EQ(be_.dirty_block_count(), 0u);
  EXPECT_TRUE(be_.tracking());
  sim_.spawn([](BlkBackend& be) -> Task<void> {
    co_await be.submit(1, IoOp::kWrite, BlockRange{2, 1});
  }(be_));
  sim_.run();
  EXPECT_EQ(be_.dirty_block_count(), 1u);
}

TEST_F(BlkBackendTest, StopTrackingStopsRecording) {
  be_.start_write_tracking(core::BitmapKind::kFlat);
  be_.stop_write_tracking();
  sim_.spawn([](BlkBackend& be) -> Task<void> {
    co_await be.submit(1, IoOp::kWrite, BlockRange{1, 1});
  }(be_));
  sim_.run();
  EXPECT_EQ(be_.dirty_block_count(), 0u);
}

TEST_F(BlkBackendTest, TrackingOverheadDelaysWrite) {
  storage::DiskModelParams fast;
  fast.request_overhead = Duration::zero();
  fast.seek = Duration::zero();
  fast.seq_write_mbps = 1e9;  // make the disk free; isolate tracking cost
  Simulator sim;
  storage::VirtualDisk disk{sim, Geometry::from_blocks(64), fast};
  BlkBackend be{sim, disk, 1};
  be.start_write_tracking(core::BitmapKind::kFlat);
  be.set_tracking_overhead(5_us);
  sim.spawn([](BlkBackend& be) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await be.submit(1, IoOp::kWrite, BlockRange{0, 1});
    }
  }(be));
  sim.run();
  EXPECT_GE(sim.now().to_seconds(), 10 * 5e-6);
}

namespace {
class HoldInterceptor final : public IoInterceptor {
 public:
  explicit HoldInterceptor(Simulator& sim) : gate_{sim} {}
  Task<void> on_request(DomainId, storage::IoOp, BlockRange) override {
    ++intercepted;
    co_await gate_.wait();
  }
  void release() { gate_.open(); }
  int intercepted = 0;

 private:
  sim::Gate gate_;
};
}  // namespace

TEST_F(BlkBackendTest, InterceptorHoldsRequests) {
  HoldInterceptor hold{sim_};
  be_.install_interceptor(&hold);
  bool done = false;
  sim_.spawn([](BlkBackend& be, bool& done) -> Task<void> {
    co_await be.submit(1, IoOp::kRead, BlockRange{0, 1});
    done = true;
  }(be_, done));
  sim_.run();
  EXPECT_EQ(hold.intercepted, 1);
  EXPECT_FALSE(done);
  hold.release();
  sim_.run();
  EXPECT_TRUE(done);
  be_.remove_interceptor();
  EXPECT_FALSE(be_.intercepting());
}

TEST(DomainTest, LifecycleAndSuspendedTime) {
  Simulator sim;
  Domain d{sim, 1, "vm1", 16};
  EXPECT_TRUE(d.running());
  sim.run_for(1_s);
  d.suspend();
  EXPECT_FALSE(d.running());
  sim.run_for(500_ms);
  d.resume();
  EXPECT_TRUE(d.running());
  EXPECT_EQ(d.total_suspended_time(), 500_ms);
  // Idempotent operations.
  d.resume();
  d.suspend();
  d.suspend();
  sim.run_for(100_ms);
  d.resume();
  EXPECT_EQ(d.total_suspended_time(), 600_ms);
}

TEST(DomainTest, BarrierBlocksWhileSuspended) {
  Simulator sim;
  Domain d{sim, 1, "vm1", 16};
  std::vector<int> order;
  d.suspend();
  sim.spawn([](Domain& d, std::vector<int>& o) -> Task<void> {
    co_await d.barrier();
    o.push_back(1);
  }(d, order));
  sim.run();
  EXPECT_TRUE(order.empty());
  d.resume();
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
}

TEST(DomainTest, DiskIoRoutesThroughFrontendToBackend) {
  Simulator sim;
  storage::VirtualDisk disk{sim, Geometry::from_blocks(256)};
  BlkBackend be{sim, disk, 7};
  Domain d{sim, 7, "vm7", 16};
  d.frontend().connect(&be);
  be.start_write_tracking(core::BitmapKind::kLayered);
  sim.spawn([](Domain& d) -> Task<void> {
    co_await d.disk_write(BlockRange{3, 1});
    co_await d.disk_read(BlockRange{3, 1});
  }(d));
  sim.run();
  EXPECT_EQ(be.guest_writes(), 1u);
  EXPECT_EQ(be.guest_reads(), 1u);
  EXPECT_TRUE(be.snapshot_dirty().test(3));  // tracked under the domain's id
}

TEST(DomainTest, SuspendedDomainDoesNoIo) {
  Simulator sim;
  storage::VirtualDisk disk{sim, Geometry::from_blocks(256)};
  BlkBackend be{sim, disk, 7};
  Domain d{sim, 7, "vm7", 16};
  d.frontend().connect(&be);
  d.suspend();
  sim.spawn([](Domain& d) -> Task<void> {
    co_await d.disk_write(BlockRange{0, 1});
  }(d));
  sim.run();
  EXPECT_EQ(be.guest_writes(), 0u);
  d.resume();
  sim.run();
  EXPECT_EQ(be.guest_writes(), 1u);
}

TEST(DomainTest, FrontendRebindSwitchesDisks) {
  Simulator sim;
  storage::VirtualDisk disk_a{sim, Geometry::from_blocks(64)};
  storage::VirtualDisk disk_b{sim, Geometry::from_blocks(64)};
  BlkBackend be_a{sim, disk_a, 7};
  BlkBackend be_b{sim, disk_b, 7};
  Domain d{sim, 7, "vm7", 16};
  d.frontend().connect(&be_a);
  sim.spawn([](Domain& d) -> Task<void> {
    co_await d.disk_write(BlockRange{0, 1});
  }(d));
  sim.run();
  d.frontend().connect(&be_b);
  sim.spawn([](Domain& d) -> Task<void> {
    co_await d.disk_write(BlockRange{1, 1});
  }(d));
  sim.run();
  EXPECT_NE(disk_a.token(0), storage::kZeroBlockToken);
  EXPECT_EQ(disk_a.token(1), storage::kZeroBlockToken);
  EXPECT_NE(disk_b.token(1), storage::kZeroBlockToken);
}

}  // namespace
}  // namespace vmig::vm
