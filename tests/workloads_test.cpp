#include <gtest/gtest.h>

#include "hypervisor/host.hpp"
#include "trace/io_trace.hpp"
#include "workloads/diabolical.hpp"
#include "workloads/kernel_build.hpp"
#include "workloads/memory_hog.hpp"
#include "workloads/streaming.hpp"
#include "workloads/trace_replay.hpp"
#include "workloads/web_server.hpp"

namespace vmig::workload {
namespace {

using sim::Simulator;
using storage::Geometry;
using namespace vmig::sim::literals;

/// One host, fast-ish disk, a domain to drive.
struct Rig {
  explicit Rig(Simulator& sim, std::uint64_t disk_mib = 4096)
      : host{sim, "h", Geometry::from_mib(disk_mib), disk_params()},
        dom{sim, 1, "guest", 64} {
    host.attach_domain(dom);
  }
  static storage::DiskModelParams disk_params() {
    storage::DiskModelParams p;
    p.seq_read_mbps = 88.0;
    p.seq_write_mbps = 82.0;
    p.seek = 4_ms;
    p.request_overhead = 80_us;
    return p;
  }
  hv::Host host;
  vm::Domain dom;
};

template <typename WL>
void run_for(Simulator& sim, WL& wl, sim::Duration d) {
  wl.start();
  sim.run_for(d);
  wl.request_stop();
  sim.run_for(10_s);  // drain
  wl.finish_metrics();
}

TEST(WebServerWorkloadTest, ServesRequestsAndStops) {
  Simulator sim;
  Rig rig{sim};
  WebServerWorkload web{sim, rig.dom, 1};
  run_for(sim, web, 60_s);
  EXPECT_TRUE(web.finished());
  // 100 connections at ~1.2 s think time => ~5000 requests in 60 s.
  EXPECT_GT(web.requests_served(), 3000u);
  EXPECT_LT(web.requests_served(), 10000u);
  // Steady throughput in the tens of MiB/s (paper Fig. 5 scale).
  const double mean = web.throughput().series().summarize().mean();
  EXPECT_GT(mean, 30.0 * 1024 * 1024);
  EXPECT_LT(mean, 150.0 * 1024 * 1024);
}

TEST(WebServerWorkloadTest, WriteRateMatchesPaperScale) {
  Simulator sim;
  Rig rig{sim};
  WebServerWorkload web{sim, rig.dom, 2};
  rig.host.backend().start_write_tracking(core::BitmapKind::kLayered);
  run_for(sim, web, 120_s);
  // Paper: ~6680 blocks dirtied over ~800 s => ~8-9 distinct blocks/s.
  const double per_s =
      static_cast<double>(rig.host.backend().dirty_block_count()) / 130.0;
  EXPECT_GT(per_s, 2.0);
  EXPECT_LT(per_s, 40.0);
}

TEST(WebServerWorkloadTest, RewriteRatioNearSpecweb) {
  Simulator sim;
  Rig rig{sim};
  WebServerWorkload web{sim, rig.dom, 3};
  trace::IoTrace tr;
  web.attach_trace(&tr);
  run_for(sim, web, 1200_s);
  const auto s = tr.analyze_writes(rig.host.disk().geometry().block_count);
  ASSERT_GT(s.write_ops, 50u);
  // Paper: 25.2% for SPECweb Banking. Accept a generous band.
  EXPECT_GT(s.rewrite_ratio(), 0.10);
  EXPECT_LT(s.rewrite_ratio(), 0.45);
}

TEST(StreamingWorkloadTest, StreamsAtBitrateWithoutStalls) {
  Simulator sim;
  Rig rig{sim};
  StreamingWorkload stream{sim, rig.dom, 4};
  run_for(sim, stream, 120_s);
  EXPECT_TRUE(stream.finished());
  EXPECT_EQ(stream.stalls(), 0u);
  // Delivered ≈ bitrate (480 kbps = 60 KB/s).
  const double mean = stream.throughput().series().summarize().mean();
  EXPECT_NEAR(mean, 60.0 * 1000, 20.0 * 1000);
}

TEST(StreamingWorkloadTest, WritesAreRare) {
  Simulator sim;
  Rig rig{sim};
  StreamingWorkload stream{sim, rig.dom, 5};
  rig.host.backend().start_write_tracking(core::BitmapKind::kLayered);
  run_for(sim, stream, 120_s);
  // Paper: 610 blocks in ~800 s => under ~2 blocks/s.
  EXPECT_LT(rig.host.backend().dirty_block_count(), 300u);
  EXPECT_GT(rig.host.backend().guest_writes(), 10u);
}

TEST(StreamingWorkloadTest, SuspensionCausesNoStallWithinTolerance) {
  Simulator sim;
  Rig rig{sim};
  StreamingWorkload stream{sim, rig.dom, 6};
  stream.start();
  sim.run_for(30_s);
  // A migration-style freeze well under the client buffer depth.
  rig.dom.suspend();
  sim.run_for(100_ms);
  rig.dom.resume();
  sim.run_for(30_s);
  stream.request_stop();
  sim.run_for(10_s);
  EXPECT_EQ(stream.stalls(), 0u);
}

TEST(StreamingWorkloadTest, LongFreezeIsDetected) {
  Simulator sim;
  Rig rig{sim};
  StreamingWorkload stream{sim, rig.dom, 7};
  stream.start();
  sim.run_for(30_s);
  rig.dom.suspend();
  sim.run_for(10_s);  // freeze-and-copy of a whole disk, ISR-style
  rig.dom.resume();
  sim.run_for(30_s);
  stream.request_stop();
  sim.run_for(10_s);
  EXPECT_GT(stream.stalls(), 0u);
  EXPECT_GT(stream.worst_lateness(), 5_s);
}

TEST(DiabolicalWorkloadTest, PhaseThroughputOrdering) {
  Simulator sim;
  Rig rig{sim};
  DiabolicalParams p;
  p.file_mib = 512;
  DiabolicalWorkload bonnie{sim, rig.dom, 8, p};
  bonnie.start();
  sim.run_for(120_s);
  bonnie.request_stop();
  sim.run_for(60_s);
  bonnie.finish_phase_metrics();

  const auto from = sim::TimePoint::origin();
  const auto to = sim.now();
  const double putc = bonnie.phase_mean("putc", from, to);
  const double write2 = bonnie.phase_mean("write2", from, to);
  const double rewrite = bonnie.phase_mean("rewrite", from, to);
  const double getc = bonnie.phase_mean("getc", from, to);
  ASSERT_GT(putc, 0.0);
  ASSERT_GT(write2, 0.0);
  ASSERT_GT(rewrite, 0.0);
  ASSERT_GT(getc, 0.0);
  // Table III / Fig. 6 ordering: write(2) > putc > rewrite.
  EXPECT_GT(write2, putc);
  EXPECT_GT(putc, rewrite);
  // write(2) saturates the disk: near the sequential write bandwidth.
  EXPECT_NEAR(write2 / (1024 * 1024), 82.0, 12.0);
  // rewrite does a read+write per block: roughly half the write rate.
  EXPECT_LT(rewrite, write2 * 0.75);
}

TEST(DiabolicalWorkloadTest, DirtiesWholeFilePerCycle) {
  Simulator sim;
  Rig rig{sim};
  DiabolicalParams p;
  p.file_mib = 256;
  DiabolicalWorkload bonnie{sim, rig.dom, 9, p};
  rig.host.backend().start_write_tracking(core::BitmapKind::kLayered);
  bonnie.start();
  // One full write pass dirties the whole file even on a slow disk.
  sim.run_for(60_s);
  bonnie.request_stop();
  sim.run_for(60_s);
  EXPECT_GE(rig.host.backend().dirty_block_count(), 256u * 256u);
}

TEST(DiabolicalWorkloadTest, RewriteRatioNearBonnie) {
  Simulator sim;
  Rig rig{sim};
  DiabolicalParams p;
  p.file_mib = 512;
  // One run on a fresh FS, as the paper measured: putc and write(2) allocate
  // fresh extents; rewrite and the seek-writes hit known blocks.
  p.max_cycles = 1;
  DiabolicalWorkload bonnie{sim, rig.dom, 10, p};
  trace::IoTrace tr;
  bonnie.attach_trace(&tr);
  bonnie.start();
  sim.run_for(400_s);
  EXPECT_EQ(bonnie.cycles_completed(), 1u);
  const auto s = tr.analyze_writes(rig.host.disk().geometry().block_count);
  ASSERT_GT(s.write_ops, 100u);
  // Paper: 35.6% of Bonnie++ writes rewrite previously-written blocks.
  EXPECT_GT(s.rewrite_ratio(), 0.25);
  EXPECT_LT(s.rewrite_ratio(), 0.50);
}

TEST(KernelBuildWorkloadTest, CompilesAndWrites) {
  Simulator sim;
  Rig rig{sim};
  KernelBuildWorkload build{sim, rig.dom, 11};
  run_for(sim, build, 300_s);
  // 2 jobs at ~0.4 s/unit => ~1500 units in 300 s.
  EXPECT_GT(build.units_compiled(), 500u);
  EXPECT_LT(build.units_compiled(), 4000u);
}

TEST(KernelBuildWorkloadTest, RewriteRatioNearKernelBuild) {
  Simulator sim;
  Rig rig{sim};
  KernelBuildWorkload build{sim, rig.dom, 12};
  trace::IoTrace tr;
  build.attach_trace(&tr);
  run_for(sim, build, 600_s);
  const auto s = tr.analyze_writes(rig.host.disk().geometry().block_count);
  ASSERT_GT(s.write_ops, 200u);
  // Paper: ~11% for a kernel build. Writes-only ratio (reads excluded).
  EXPECT_GT(s.rewrite_ratio(), 0.04);
  EXPECT_LT(s.rewrite_ratio(), 0.25);
}

TEST(WebServerWorkloadTest, FreezeShowsUpInTailLatency) {
  Simulator sim;
  Rig rig{sim};
  WebServerWorkload web{sim, rig.dom, 21};
  web.start();
  sim.run_for(20_s);
  const auto max_before = web.request_latency().max();
  rig.dom.suspend();
  sim.run_for(150_ms);  // a freeze well above normal request latency
  rig.dom.resume();
  sim.run_for(20_s);
  web.request_stop();
  sim.run_for(10_s);
  EXPECT_LT(max_before, 100_ms);
  EXPECT_GE(web.request_latency().max(), 140_ms);  // a request ate the freeze
  // But the median is unaffected: only the stalled requests paid.
  EXPECT_LT(web.request_latency().quantile(0.5), 20_ms);
}

TEST(TraceReplayTest, ReplaysScheduleAndOps) {
  Simulator sim;
  Rig rig{sim};
  trace::IoTrace tr;
  tr.record(sim::TimePoint::origin() + 1_s, storage::IoOp::kWrite,
            storage::BlockRange{10, 4});
  tr.record(sim::TimePoint::origin() + 2_s, storage::IoOp::kRead,
            storage::BlockRange{10, 4});
  tr.record(sim::TimePoint::origin() + 3_s, storage::IoOp::kWrite,
            storage::BlockRange{100, 2});
  TraceReplayWorkload replay{sim, rig.dom, tr, 1};
  rig.host.backend().start_write_tracking(core::BitmapKind::kLayered);
  replay.start();
  sim.run_for(60_s);
  EXPECT_TRUE(replay.finished());
  EXPECT_EQ(replay.events_replayed(), 3u);
  EXPECT_EQ(replay.passes_completed(), 1u);
  // Both writes tracked; the read is not.
  EXPECT_EQ(rig.host.backend().dirty_block_count(), 6u);
  // The schedule was honored: the last event fired ~2 s after the first.
  EXPECT_GE(sim.now().to_seconds(), 2.0);
}

TEST(TraceReplayTest, TimeScaleCompresses) {
  Simulator sim;
  Rig rig{sim};
  trace::IoTrace tr;
  for (int i = 0; i < 10; ++i) {
    tr.record(sim::TimePoint::origin() + sim::Duration::seconds(i),
              storage::IoOp::kWrite, storage::BlockRange{static_cast<storage::BlockId>(i), 1});
  }
  TraceReplayParams p;
  p.time_scale = 0.1;  // 10x faster
  TraceReplayWorkload replay{sim, rig.dom, tr, 1, p};
  replay.start();
  sim.run();
  EXPECT_EQ(replay.events_replayed(), 10u);
  EXPECT_LT(sim.now().to_seconds(), 2.0);  // 9 s of trace in ~0.9 s
}

TEST(TraceReplayTest, LoopRepeatsUntilStopped) {
  Simulator sim;
  Rig rig{sim};
  trace::IoTrace tr;
  tr.record(sim::TimePoint::origin(), storage::IoOp::kWrite,
            storage::BlockRange{0, 1});
  tr.record(sim::TimePoint::origin() + 100_ms, storage::IoOp::kWrite,
            storage::BlockRange{1, 1});
  TraceReplayParams p;
  p.loop = true;
  TraceReplayWorkload replay{sim, rig.dom, tr, 1, p};
  replay.start();
  sim.run_for(1_s);
  replay.request_stop();
  sim.run_for(1_s);
  EXPECT_TRUE(replay.finished());
  EXPECT_GT(replay.passes_completed(), 3u);
}

TEST(TraceReplayTest, ClampsBlocksFromLargerDisk) {
  Simulator sim;
  Rig rig{sim, /*disk_mib=*/4};  // 1024 blocks
  trace::IoTrace tr;
  tr.record(sim::TimePoint::origin(), storage::IoOp::kWrite,
            storage::BlockRange{1'000'000, 8});  // far beyond this disk
  TraceReplayWorkload replay{sim, rig.dom, tr, 1};
  replay.start();
  sim.run();
  EXPECT_EQ(replay.events_replayed(), 1u);  // replayed, clamped, no crash
}

TEST(MemoryHogTest, DirtiesAtConfiguredRate) {
  Simulator sim;
  Rig rig{sim};
  MemoryHogParams p;
  p.dirty_rate_pps = 10000.0;
  p.hot_pages = 1024;
  MemoryHogWorkload hog{sim, rig.dom, 5, p};
  rig.dom.memory().enable_dirty_log();
  hog.start();
  sim.run_for(2_s);
  hog.request_stop();
  sim.run_for(1_s);
  // ~20k writes in 2 s (batched).
  EXPECT_NEAR(static_cast<double>(hog.writes_issued()), 20000.0, 2500.0);
  // Dirty set ~ hot set (plus the cold tail).
  const auto dirty = rig.dom.memory().dirty_page_count();
  EXPECT_GE(dirty, 900u);
  EXPECT_LT(dirty, 3000u);
}

TEST(MemoryHogTest, ColdFractionSpreadsBeyondHotSet) {
  Simulator sim;
  Rig rig{sim};
  MemoryHogParams p;
  p.dirty_rate_pps = 50000.0;
  p.hot_pages = 256;
  p.cold_fraction = 0.5;
  MemoryHogWorkload hog{sim, rig.dom, 6, p};
  rig.dom.memory().enable_dirty_log();
  hog.start();
  sim.run_for(1_s);
  hog.request_stop();
  sim.run_for(1_s);
  EXPECT_GT(rig.dom.memory().dirty_page_count(), 2000u);  // well past hot set
}

TEST(WorkloadTest, StopIsPromptAndIdempotent) {
  Simulator sim;
  Rig rig{sim};
  WebServerWorkload web{sim, rig.dom, 13};
  web.start();
  sim.run_for(5_s);
  web.request_stop();
  web.request_stop();
  sim.run_for(10_s);
  EXPECT_TRUE(web.finished());
}

}  // namespace
}  // namespace vmig::workload
