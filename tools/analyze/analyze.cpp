#include "analyze.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace vmig::analyze {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser — just enough for the flight
// record's own output grammar (objects, arrays, strings, numbers, bools).
// Numbers are kept as doubles; every integer the recorder emits fits a
// double exactly (bytes < 2^53, sim-ns < 2^53).
// ---------------------------------------------------------------------------

struct Value {
  enum class Kind : std::uint8_t { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::map<std::string, Value> obj;

  const Value* find(const std::string& key) const {
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
  double d(const std::string& key) const {
    const Value* v = find(key);
    return v != nullptr && v->kind == Kind::kNum ? v->num : 0.0;
  }
  std::uint64_t u(const std::string& key) const {
    return static_cast<std::uint64_t>(std::llround(d(key)));
  }
  std::int64_t i(const std::string& key) const {
    return std::llround(d(key));
  }
  std::string s(const std::string& key) const {
    const Value* v = find(key);
    return v != nullptr && v->kind == Kind::kStr ? v->str : std::string{};
  }
  bool flag(const std::string& key) const {
    const Value* v = find(key);
    return v != nullptr && v->kind == Kind::kBool && v->b;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text)
      : p_{text.c_str()}, end_{text.c_str() + text.size()} {}

  /// Parse one complete JSON value; returns false on any syntax error or
  /// trailing garbage.
  bool parse(Value& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }
  bool literal(const char* word) {
    const char* q = p_;
    for (; *word != '\0'; ++word, ++q) {
      if (q == end_ || *q != *word) return false;
    }
    p_ = q;
    return true;
  }
  bool value(Value& out) {
    if (p_ == end_) return false;
    switch (*p_) {
      case '{':
        return object(out);
      case '[':
        return array(out);
      case '"':
        out.kind = Value::Kind::kStr;
        return string(out.str);
      case 't':
        out.kind = Value::Kind::kBool;
        out.b = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::kBool;
        out.b = false;
        return literal("false");
      case 'n':
        out.kind = Value::Kind::kNull;
        return literal("null");
      default:
        return number(out);
    }
  }
  bool object(Value& out) {
    out.kind = Value::Kind::kObj;
    ++p_;  // '{'
    skip_ws();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (p_ == end_ || *p_ != '"' || !string(key)) return false;
      skip_ws();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      skip_ws();
      Value v;
      if (!value(v)) return false;
      out.obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return false;
    }
  }
  bool array(Value& out) {
    out.kind = Value::Kind::kArr;
    ++p_;  // '['
    skip_ws();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    for (;;) {
      skip_ws();
      Value v;
      if (!value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return false;
    }
  }
  bool string(std::string& out) {
    ++p_;  // opening quote
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        switch (*p_) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (end_ - p_ < 5) return false;
            unsigned code = 0;
            for (int k = 1; k <= 4; ++k) {
              const char c = p_[k];
              code <<= 4;
              if (c >= '0' && c <= '9') {
                code |= static_cast<unsigned>(c - '0');
              } else if (c >= 'a' && c <= 'f') {
                code |= static_cast<unsigned>(c - 'a' + 10);
              } else if (c >= 'A' && c <= 'F') {
                code |= static_cast<unsigned>(c - 'A' + 10);
              } else {
                return false;
              }
            }
            // The recorder only escapes control bytes, so a one-byte cast
            // is faithful; anything wider is replaced, not mis-decoded.
            out += code < 256 ? static_cast<char>(code) : '?';
            p_ += 4;
            break;
          }
          default:
            return false;
        }
        ++p_;
      } else {
        out += *p_++;
      }
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }
  bool number(Value& out) {
    char* after = nullptr;
    out.kind = Value::Kind::kNum;
    out.num = std::strtod(p_, &after);
    if (after == p_) return false;
    p_ = after;
    return true;
  }

  const char* p_;
  const char* end_;
};

// ---------------------------------------------------------------------------
// The loaded record.
// ---------------------------------------------------------------------------

struct Migration {
  std::uint64_t id = 0;
  Value summary;  ///< the "summary" object (with nested sections)
};

struct Record {
  std::uint64_t capacity = 0;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t kept = 0;
  std::map<std::string, std::uint64_t> event_counts;  ///< by "k"
  std::vector<Migration> migs;
  std::vector<Value> jobs;  ///< the "job" objects
  bool saw_header = false;
  bool saw_end = false;
};

bool load_record(std::istream& in, Record& rec, std::ostream& err) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    Value v;
    if (!Parser{line}.parse(v) || v.kind != Value::Kind::kObj) {
      err << "vmig_analyze: parse error at line " << lineno << "\n";
      return false;
    }
    if (const Value* hdr = v.find("vmig_flight_record")) {
      rec.saw_header = true;
      rec.capacity = hdr->u("capacity");
    } else if (const Value* k = v.find("k")) {
      if (k->kind == Value::Kind::kStr) ++rec.event_counts[k->str];
    } else if (const Value* sum = v.find("summary")) {
      Migration m;
      m.id = sum->u("migration");
      m.summary = *sum;
      rec.migs.push_back(std::move(m));
    } else if (const Value* job = v.find("job")) {
      rec.jobs.push_back(*job);
    } else if (const Value* end = v.find("end")) {
      rec.saw_end = true;
      rec.recorded = end->u("recorded");
      rec.dropped = end->u("dropped");
      rec.kept = end->u("events");
    } else if (v.find("migration") != nullptr) {
      // begin-migration line; the summary carries everything it does.
    } else {
      err << "vmig_analyze: unknown line kind at line " << lineno << "\n";
      return false;
    }
  }
  if (!rec.saw_header) {
    err << "vmig_analyze: not a flight record (missing header line)\n";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Formatting helpers — printf only, so the report is deterministic.
// ---------------------------------------------------------------------------

std::string fmt(const char* f, ...) __attribute__((format(printf, 1, 2)));
std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

std::string secs(std::int64_t ns) {
  return fmt("%.6fs", static_cast<double>(ns) / 1e9);
}

std::string millis(std::int64_t ns) {
  return fmt("%.3fms", static_cast<double>(ns) / 1e6);
}

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

/// One reconciliation line; accumulates the overall verdict.
class Checks {
 public:
  explicit Checks(std::ostream& out) : out_{out} {}

  void eq(const char* what, std::uint64_t recorder, std::uint64_t report) {
    const bool pass = recorder == report;
    ok_ = ok_ && pass;
    out_ << "    [" << (pass ? "OK" : "FAIL") << "] " << what << ": "
         << recorder << (pass ? " == " : " != ") << report << "\n";
  }
  void close(const char* what, double a, double b) {
    // Both sides round-tripped through the same %.9g serialization of the
    // same double, so equality is exact, not approximate.
    const bool pass = a == b;
    ok_ = ok_ && pass;
    out_ << "    [" << (pass ? "OK" : "FAIL") << "] " << what << ": "
         << fmt("%.9g", a) << (pass ? " == " : " != ") << fmt("%.9g", b)
         << "\n";
  }
  void fail(const std::string& what) {
    ok_ = false;
    out_ << "    [FAIL] " << what << "\n";
  }
  bool ok() const noexcept { return ok_; }

 private:
  std::ostream& out_;
  bool ok_ = true;
};

const Value& section(const Value& summary, const char* name) {
  static const Value kEmpty{};
  const Value* v = summary.find(name);
  return v != nullptr && v->kind == Value::Kind::kObj ? *v : kEmpty;
}

// ---------------------------------------------------------------------------
// Per-migration report sections.
// ---------------------------------------------------------------------------

void print_downtime_attribution(std::ostream& out, const Value& freeze) {
  const std::uint64_t mem = freeze.u("residual_mem_bytes");
  const std::uint64_t cpu = freeze.u("cpu_bytes");
  const std::uint64_t bm = freeze.u("bitmap_bytes");
  const std::uint64_t total = mem + cpu + bm;
  out << "  downtime attribution (freeze-phase wire bytes):\n";
  out << fmt("    residual memory  %12llu B  (%5.1f%%)  [%llu pages]\n",
             static_cast<unsigned long long>(mem), pct(mem, total),
             static_cast<unsigned long long>(freeze.u("residual_pages")));
  out << fmt("    cpu state        %12llu B  (%5.1f%%)\n",
             static_cast<unsigned long long>(cpu), pct(cpu, total));
  out << fmt("    block bitmap     %12llu B  (%5.1f%%)  [%llu blocks left]\n",
             static_cast<unsigned long long>(bm), pct(bm, total),
             static_cast<unsigned long long>(freeze.u("bitmap_blocks")));
  out << fmt("    total            %12llu B\n",
             static_cast<unsigned long long>(total));
}

void print_precopy_waste(std::ostream& out, const Value& pre,
                         std::size_t top_k) {
  out << "  pre-copy waste:\n";
  const Value* iters = pre.find("iters");
  std::uint64_t resent_bytes = 0;
  std::uint64_t resent_blocks = 0;
  if (iters != nullptr) {
    for (const Value& it : iters->arr) {
      out << fmt("    iter %-2lld  %12llu blocks  %12llu B\n",
                 static_cast<long long>(it.i("iter")),
                 static_cast<unsigned long long>(it.u("blocks")),
                 static_cast<unsigned long long>(it.u("bytes")));
      if (it.i("iter") >= 2) {
        resent_bytes += it.u("bytes");
        resent_blocks += it.u("blocks");
      }
    }
  }
  out << fmt("    re-sent (iter>=2): %llu blocks / %llu B; redirtied during "
             "pre-copy: %llu blocks in %llu writes\n",
             static_cast<unsigned long long>(resent_blocks),
             static_cast<unsigned long long>(resent_bytes),
             static_cast<unsigned long long>(pre.u("redirty_blocks")),
             static_cast<unsigned long long>(pre.u("redirty_events")));

  // Copies-per-block percentiles over the recorded distribution, through the
  // same obs::Histogram the engine uses for its own summaries.
  const Value* dist = pre.find("copy_counts");
  obs::Histogram h;
  std::uint32_t max_copies = 0;
  if (dist != nullptr) {
    for (const Value& pair : dist->arr) {
      if (pair.arr.size() != 2) continue;
      const auto copies = static_cast<std::uint32_t>(pair.arr[0].num);
      const auto blocks = static_cast<std::uint64_t>(pair.arr[1].num);
      max_copies = std::max(max_copies, copies);
      for (std::uint64_t n = 0; n < blocks; ++n) {
        h.observe(static_cast<double>(copies));
      }
    }
  }
  if (h.count() > 0) {
    out << fmt("    copies per block: p50 %.9g  p95 %.9g  p99 %.9g  max %u  "
               "(%llu blocks sent)\n",
               h.quantile(0.5), h.quantile(0.95), h.quantile(0.99), max_copies,
               static_cast<unsigned long long>(pre.u("blocks_sent")));
  } else {
    out << "    copies per block: no blocks sent\n";
  }

  const Value* hot = pre.find("hot_blocks");
  if (hot == nullptr || hot->arr.empty()) {
    out << "    hottest blocks: none sent more than once\n";
  } else {
    out << "    hottest blocks:";
    std::size_t shown = 0;
    for (const Value& pair : hot->arr) {
      if (shown == top_k || pair.arr.size() != 2) break;
      out << fmt(" %llu(x%llu)",
                 static_cast<unsigned long long>(pair.arr[0].num),
                 static_cast<unsigned long long>(pair.arr[1].num));
      ++shown;
    }
    out << "\n";
  }
}

void print_postcopy(std::ostream& out, const Value& post) {
  const std::uint64_t pushed = post.u("blocks_pushed");
  const std::uint64_t pulled = post.u("blocks_pulled");
  out << "  post-copy degradation:\n";
  out << fmt("    push %llu blocks / %llu B in %llu msgs; pull %llu blocks / "
             "%llu B over %llu requests (%llu B of requests)\n",
             static_cast<unsigned long long>(pushed),
             static_cast<unsigned long long>(post.u("push_bytes")),
             static_cast<unsigned long long>(post.u("push_msgs")),
             static_cast<unsigned long long>(pulled),
             static_cast<unsigned long long>(post.u("pull_bytes")),
             static_cast<unsigned long long>(post.u("pull_requests")),
             static_cast<unsigned long long>(post.u("pull_req_bytes")));
  const std::uint64_t applied = pushed + pulled;
  out << fmt("    pull share %.1f%% of applied blocks; dropped (overwritten "
             "locally) %llu\n",
             pct(pulled, applied),
             static_cast<unsigned long long>(post.u("blocks_dropped")));
  out << fmt("    overwrite-cancel: %llu events obsoleted %llu blocks, "
             "saving %llu B of writes\n",
             static_cast<unsigned long long>(post.u("cancel_events")),
             static_cast<unsigned long long>(post.u("blocks_cancelled")),
             static_cast<unsigned long long>(post.u("cancel_saved_bytes")));
  out << fmt("    read stalls: %llu (total %s, max %s)  p50 %.9gns  "
             "p95 %.9gns  p99 %.9gns\n",
             static_cast<unsigned long long>(post.u("stall_count")),
             millis(post.i("stall_total_ns")).c_str(),
             millis(post.i("stall_max_ns")).c_str(),
             post.d("stall_hist_p50_ns"), post.d("stall_hist_p95_ns"),
             post.d("stall_hist_p99_ns"));
  if (post.u("pull_lat_count") > 0) {
    out << fmt("    pull latency: %llu measured  p50 %.9gns  p95 %.9gns  "
               "p99 %.9gns\n",
               static_cast<unsigned long long>(post.u("pull_lat_count")),
               post.d("pull_lat_p50_ns"), post.d("pull_lat_p95_ns"),
               post.d("pull_lat_p99_ns"));
  }
}

void reconcile(Checks& ck, const Value& sum) {
  const Value& rep = section(sum, "report");
  const Value& pre = section(sum, "precopy");
  const Value& mem = section(sum, "mem");
  const Value& freeze = section(sum, "freeze");
  const Value& post = section(sum, "postcopy");
  if (!rep.flag("closed")) {
    ck.fail("migration record never closed (no MigrationReport to "
            "reconcile against)");
    return;
  }

  std::uint64_t iter1 = 0;
  std::uint64_t later = 0;
  if (const Value* iters = pre.find("iters")) {
    for (const Value& it : iters->arr) {
      if (it.i("iter") == 1) {
        iter1 += it.u("bytes");
      } else {
        later += it.u("bytes");
      }
    }
  }
  ck.eq("iter-1 bytes == bytes_disk_first_pass", iter1,
        rep.u("bytes_disk_first_pass"));
  ck.eq("iter>=2 bytes == bytes_disk_retransfer", later,
        rep.u("bytes_disk_retransfer"));
  ck.eq("memory round bytes == bytes_memory_precopy", mem.u("bytes"),
        rep.u("bytes_memory_precopy"));
  ck.eq("residual mem + cpu == bytes_freeze_residual",
        freeze.u("residual_mem_bytes") + freeze.u("cpu_bytes"),
        rep.u("bytes_freeze_residual"));
  ck.eq("bitmap bytes == bytes_bitmap", freeze.u("bitmap_bytes"),
        rep.u("bytes_bitmap"));
  ck.eq("bitmap blocks == residual_dirty_blocks", freeze.u("bitmap_blocks"),
        rep.u("residual_dirty_blocks"));
  ck.eq("push bytes == bytes_postcopy_push", post.u("push_bytes"),
        rep.u("bytes_postcopy_push"));
  ck.eq("pull + request bytes == bytes_postcopy_pull",
        post.u("pull_bytes") + post.u("pull_req_bytes"),
        rep.u("bytes_postcopy_pull"));
  ck.eq("blocks pushed", post.u("blocks_pushed"), rep.u("blocks_pushed"));
  ck.eq("blocks pulled", post.u("blocks_pulled"), rep.u("blocks_pulled"));
  ck.eq("blocks dropped", post.u("blocks_dropped"), rep.u("blocks_dropped"));
  ck.eq("stall count == postcopy_reads_blocked", post.u("stall_count"),
        rep.u("postcopy_reads_blocked"));
  ck.eq("stall total ns",
        static_cast<std::uint64_t>(post.i("stall_total_ns")),
        static_cast<std::uint64_t>(rep.i("postcopy_read_stall_total_ns")));
  ck.eq("stall max ns", static_cast<std::uint64_t>(post.i("stall_max_ns")),
        static_cast<std::uint64_t>(rep.i("postcopy_read_stall_max_ns")));
  if (sum.s("status") == "completed") {
    std::uint64_t iter_rows = 0;
    if (const Value* iters = pre.find("iters")) iter_rows = iters->arr.size();
    ck.eq("disk iterations", iter_rows, rep.u("disk_iterations"));
    ck.eq("memory rounds", mem.u("rounds"), rep.u("mem_iterations"));
  }
}

void print_migration(std::ostream& out, Checks& ck, const Migration& m,
                     std::size_t top_k) {
  const Value& sum = m.summary;
  const Value& rep = section(sum, "report");
  out << "migration " << m.id << ": " << sum.s("domain") << "  "
      << sum.s("from") << " -> " << sum.s("to") << "  [" << sum.s("status")
      << "]\n";
  if (rep.flag("closed") && sum.s("status") == "completed") {
    const std::int64_t down = rep.i("resumed_ns") - rep.i("suspended_ns");
    out << "  timeline: started " << secs(sum.i("started_ns"))
        << ", suspended " << secs(rep.i("suspended_ns")) << ", resumed "
        << secs(rep.i("resumed_ns")) << ", synchronized "
        << secs(rep.i("synchronized_ns")) << "\n";
    out << "  downtime " << millis(down) << ", total "
        << secs(rep.i("synchronized_ns") - sum.i("started_ns")) << "\n";
  } else {
    out << "  timeline: started " << secs(sum.i("started_ns")) << ", ended "
        << secs(sum.i("ended_ns")) << " (no completed freeze)\n";
  }
  print_downtime_attribution(out, section(sum, "freeze"));
  print_precopy_waste(out, section(sum, "precopy"), top_k);
  const Value& memv = section(sum, "mem");
  out << fmt("  memory pre-copy: %llu rounds, %llu pages, %llu B\n",
             static_cast<unsigned long long>(memv.u("rounds")),
             static_cast<unsigned long long>(memv.u("pages")),
             static_cast<unsigned long long>(memv.u("bytes")));
  print_postcopy(out, section(sum, "postcopy"));
  out << "  reconciliation vs MigrationReport:\n";
  reconcile(ck, sum);
}

// ---------------------------------------------------------------------------
// Cluster-job SLO table.
// ---------------------------------------------------------------------------

void print_jobs(std::ostream& out, const std::vector<Value>& jobs) {
  out << "cluster jobs (" << jobs.size() << "):\n";
  out << "    job  domain        route                 status           "
         "att  def  downtime      total        deadline     slo\n";
  std::uint64_t met = 0;
  std::uint64_t missed = 0;
  std::uint64_t resumed = 0;
  std::uint64_t saved = 0;
  for (const Value& j : jobs) {
    const std::int64_t deadline = j.i("deadline_ns");
    const std::int64_t total = j.i("total_ns");
    const char* slo = "-";
    if (deadline > 0) {
      if (total <= deadline && j.s("status") == "completed") {
        slo = "met";
        ++met;
      } else {
        slo = "MISS";
        ++missed;
      }
    }
    if (j.flag("resume_applied")) {
      ++resumed;
      saved += j.u("resumed_blocks_saved");
    }
    const std::string route = j.s("from") + "->" + j.s("to");
    out << fmt("    %-4llu %-13s %-21s %-16s %-4llu %-4llu %-13s %-12s %-12s "
               "%s\n",
               static_cast<unsigned long long>(j.u("id")),
               j.s("domain").c_str(), route.c_str(), j.s("status").c_str(),
               static_cast<unsigned long long>(j.u("attempts")),
               static_cast<unsigned long long>(j.u("deferrals")),
               millis(j.i("downtime_ns")).c_str(), secs(total).c_str(),
               deadline > 0 ? secs(deadline).c_str() : "-", slo);
  }
  out << fmt("    slo: %llu met, %llu missed, %llu without deadline; resume "
             "applied on %llu jobs saving %llu blocks\n",
             static_cast<unsigned long long>(met),
             static_cast<unsigned long long>(missed),
             static_cast<unsigned long long>(jobs.size() - met - missed),
             static_cast<unsigned long long>(resumed),
             static_cast<unsigned long long>(saved));
}

// ---------------------------------------------------------------------------
// --metrics CSV cross-check.
// ---------------------------------------------------------------------------

/// Last value of `metric` in a long-format "t_seconds,metric,value" CSV.
bool last_metric(std::istream& in, const std::string& metric, double& out) {
  std::string line;
  bool found = false;
  while (std::getline(in, line)) {
    const std::size_t c1 = line.find(',');
    if (c1 == std::string::npos) continue;
    const std::size_t c2 = line.find(',', c1 + 1);
    if (c2 == std::string::npos) continue;
    if (line.compare(c1 + 1, c2 - c1 - 1, metric) != 0) continue;
    out = std::strtod(line.c_str() + c2 + 1, nullptr);
    found = true;
  }
  return found;
}

void cross_check_metrics(std::ostream& out, Checks& ck, const Record& rec,
                         const std::string& path, std::ostream& err) {
  out << "metrics cross-check (" << path << "):\n";
  if (rec.migs.size() != 1) {
    out << "    skipped: registry histograms aggregate across "
        << rec.migs.size() << " migrations, recorder is per-migration\n";
    return;
  }
  std::ifstream in{path};
  if (!in) {
    err << "vmig_analyze: cannot open metrics CSV '" << path << "'\n";
    ck.fail("metrics CSV unreadable");
    return;
  }
  double csv_count = 0.0;
  double csv_p99 = 0.0;
  {
    const bool have_count =
        last_metric(in, "postcopy.read_stall_ns.count", csv_count);
    in.clear();
    in.seekg(0);
    const bool have_p99 = last_metric(in, "postcopy.read_stall_ns.p99", csv_p99);
    if (!have_count || !have_p99) {
      ck.fail("metrics CSV has no postcopy.read_stall_ns summary rows");
      return;
    }
  }
  const Value& post = section(rec.migs[0].summary, "postcopy");
  ck.eq("stall count == postcopy.read_stall_ns.count", post.u("stall_count"),
        static_cast<std::uint64_t>(std::llround(csv_count)));
  ck.close("stall p99 == postcopy.read_stall_ns.p99",
           post.d("stall_hist_p99_ns"), csv_p99);
}

// ---------------------------------------------------------------------------
// --fleet: record-derived fleet rollup + exact per-job reconciliation.
// ---------------------------------------------------------------------------

/// MigrationReport::total_bytes() over a summary's "report" section.
std::uint64_t report_bytes(const Value& rep) {
  return rep.u("bytes_disk_first_pass") + rep.u("bytes_disk_retransfer") +
         rep.u("bytes_memory_precopy") + rep.u("bytes_freeze_residual") +
         rep.u("bytes_bitmap") + rep.u("bytes_postcopy_push") +
         rep.u("bytes_postcopy_pull") + rep.u("bytes_control");
}

/// Fleet totals derived purely from the flight record, mirroring what
/// obs::Rollup accumulates orchestrator-side. Each job's terminal attempt is
/// found positionally: migration summaries appear in begin order and jobs on
/// one (domain, from, to) route run one at a time, so walking the jobs in
/// record order and consuming `attempts` summaries per job from its route
/// group assigns every attempt to its job — the last consumed one is the
/// terminal attempt whose MigrationReport the rollup folded in.
void print_fleet(std::ostream& out, Checks& ck, const Record& rec,
                 const std::string& metrics_path, std::ostream& err) {
  out << "fleet rollup (derived from record):\n";

  std::map<std::string, std::vector<const Value*>> by_route;
  for (const Migration& m : rec.migs) {
    const std::string key = m.summary.s("domain") + "\x1f" +
                            m.summary.s("from") + "\x1f" + m.summary.s("to");
    by_route[key].push_back(&m.summary);
  }

  std::map<std::string, std::size_t> consumed;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t slo_miss = 0;
  std::uint64_t bytes_total = 0;
  std::int64_t downtime_total = 0;
  std::uint64_t dirty_total = 0;
  std::uint64_t unmapped = 0;        ///< jobs whose attempts outran summaries
  std::uint64_t downtime_mismatch = 0;
  for (const Value& j : rec.jobs) {
    const std::string status = j.s("status");
    const bool is_completed = status == "completed";
    const std::uint64_t attempts = j.u("attempts");
    if (is_completed) {
      ++completed;
    } else {
      ++failed;
    }
    // Every non-terminal attempt went back through the backoff queue; a
    // deadline-expired job's *last* attempt was requeued too (expiry fires
    // in the pending state), so all of its attempts count.
    if (status == "deadline-expired") {
      retries += attempts;
    } else if (attempts > 0) {
      retries += attempts - 1;
    }
    const std::int64_t deadline = j.i("deadline_ns");
    const std::int64_t total = j.i("total_ns");
    if (deadline > 0 && !(is_completed && total <= deadline)) ++slo_miss;
    downtime_total += j.i("downtime_ns");

    const std::string key =
        j.s("domain") + "\x1f" + j.s("from") + "\x1f" + j.s("to");
    const Value* terminal = nullptr;
    auto route = by_route.find(key);
    std::size_t& used = consumed[key];
    if (route != by_route.end() && used + attempts <= route->second.size()) {
      used += attempts;
      if (attempts > 0) terminal = route->second[used - 1];
    } else if (attempts > 0) {
      ++unmapped;
      continue;
    }
    if (terminal == nullptr) continue;  // zero attempts: default report
    const Value& trep = section(*terminal, "report");
    bytes_total += report_bytes(trep);
    dirty_total +=
        trep.u("blocks_retransferred") + trep.u("residual_dirty_blocks");
    // Per-job exact check, aggregated so the section stays bounded at fleet
    // scale: the job line's downtime must be the terminal attempt's.
    // downtime() is resumed - suspended even on an abort (where it can be
    // negative or zero) — mirror the engine, don't special-case.
    const std::int64_t trep_down =
        trep.flag("closed") ? trep.i("resumed_ns") - trep.i("suspended_ns")
                            : 0;
    if (trep_down != j.i("downtime_ns")) ++downtime_mismatch;
  }

  out << fmt("    jobs: %llu submitted, %llu completed, %llu failed, "
             "%llu retries, %llu slo_miss\n",
             static_cast<unsigned long long>(rec.jobs.size()),
             static_cast<unsigned long long>(completed),
             static_cast<unsigned long long>(failed),
             static_cast<unsigned long long>(retries),
             static_cast<unsigned long long>(slo_miss));
  out << fmt("    bytes_total=%llu downtime_ns_total=%lld "
             "dirty_blocks_total=%llu\n",
             static_cast<unsigned long long>(bytes_total),
             static_cast<long long>(downtime_total),
             static_cast<unsigned long long>(dirty_total));
  ck.eq("jobs with no matching attempt summaries", unmapped, 0);
  ck.eq("jobs whose downtime != terminal attempt's", downtime_mismatch, 0);

  if (metrics_path.empty()) return;
  out << "  rollup CSV cross-check (" << metrics_path << "):\n";
  std::ifstream in{metrics_path};
  if (!in) {
    err << "vmig_analyze: cannot open fleet CSV '" << metrics_path << "'\n";
    ck.fail("fleet CSV unreadable");
    return;
  }
  // Terminal-snapshot totals vs the record. Both sides are exact integers
  // (the rollup prints them undoctored), so every check is eq, not close.
  const struct {
    const char* metric;
    std::uint64_t want;
  } checks[] = {
      {"fleet.jobs_submitted", rec.jobs.size()},
      {"fleet.jobs_completed", completed},
      {"fleet.jobs_failed", failed},
      {"fleet.retries", retries},
      {"fleet.slo_miss", slo_miss},
      {"fleet.bytes_total", bytes_total},
      {"fleet.downtime_ns_total", static_cast<std::uint64_t>(downtime_total)},
      {"fleet.dirty_blocks_total", dirty_total},
  };
  for (const auto& c : checks) {
    in.clear();
    in.seekg(0);
    double got = 0.0;
    if (!last_metric(in, c.metric, got)) {
      ck.fail(std::string{"fleet CSV has no "} + c.metric + " rows");
      continue;
    }
    ck.eq(c.metric, static_cast<std::uint64_t>(std::llround(got)), c.want);
  }
}

}  // namespace

int run(const Options& opt, std::ostream& out, std::ostream& err) {
  std::ifstream in{opt.record_path};
  if (!in) {
    err << "vmig_analyze: cannot open '" << opt.record_path << "'\n";
    return 2;
  }
  Record rec;
  if (!load_record(in, rec, err)) return 2;

  out << "vmig_analyze: " << opt.record_path << "\n";
  out << "flight record: capacity " << rec.capacity << ", " << rec.recorded
      << " events recorded, " << rec.kept << " kept, " << rec.dropped
      << " dropped";
  if (rec.dropped > 0) out << " (ring wrapped; aggregates stay exact)";
  out << "\n";
  if (!rec.event_counts.empty()) {
    out << "events by kind:";
    for (const auto& [kind, n] : rec.event_counts) {
      out << " " << kind << "=" << n;
    }
    out << "\n";
  }
  out << "\n";

  Checks ck{out};
  for (const Migration& m : rec.migs) {
    print_migration(out, ck, m, opt.top_k);
    out << "\n";
  }
  if (rec.migs.empty()) {
    out << "no migrations in record\n\n";
  }
  if (!rec.jobs.empty()) {
    print_jobs(out, rec.jobs);
    out << "\n";
  }
  if (!opt.metrics_path.empty()) {
    cross_check_metrics(out, ck, rec, opt.metrics_path, err);
    out << "\n";
  }
  if (opt.fleet || !opt.fleet_metrics_path.empty()) {
    print_fleet(out, ck, rec, opt.fleet_metrics_path, err);
    out << "\n";
  }

  out << (ck.ok() ? "verdict: all reconciliation checks passed\n"
                  : "verdict: RECONCILIATION FAILED\n");
  return ck.ok() ? 0 : 1;
}

}  // namespace vmig::analyze
