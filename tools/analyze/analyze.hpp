#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

namespace vmig::analyze {

/// vmig_analyze: post-mortem attribution over a migration flight record
/// (`vmig_sim --flight-record`, docs/ANALYSIS.md). The report is a pure
/// function of the input files — running it twice over the same record
/// yields byte-identical output.
struct Options {
  /// JSONL flight record written by obs::write_flight_record.
  std::string record_path;
  /// Optional `--metrics` CSV from the same run: cross-checks the stall
  /// histogram summary rows against the recorder's own percentiles
  /// (single-migration records only — the registry aggregates across all).
  std::string metrics_path;
  /// Hottest-blocks rows to print in the pre-copy waste section.
  std::size_t top_k = 8;
};

/// Analyze `opt.record_path` and print the report to `out` (diagnostics to
/// `err`). Returns the process exit status: 0 = every reconciliation check
/// passed, 1 = at least one [FAIL], 2 = unreadable or malformed input.
int run(const Options& opt, std::ostream& out, std::ostream& err);

}  // namespace vmig::analyze
