#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

namespace vmig::analyze {

/// vmig_analyze: post-mortem attribution over a migration flight record
/// (`vmig_sim --flight-record`, docs/ANALYSIS.md). The report is a pure
/// function of the input files — running it twice over the same record
/// yields byte-identical output.
struct Options {
  /// JSONL flight record written by obs::write_flight_record.
  std::string record_path;
  /// Optional `--metrics` CSV from the same run: cross-checks the stall
  /// histogram summary rows against the recorder's own percentiles
  /// (single-migration records only — the registry aggregates across all).
  std::string metrics_path;
  /// Hottest-blocks rows to print in the pre-copy waste section.
  std::size_t top_k = 8;
  /// `--fleet`: derive fleet totals (jobs, bytes, downtime, dirty blocks,
  /// SLO misses) from the record's job and migration lines and reconcile
  /// each job against its terminal attempt's MigrationReport — exact
  /// integer checks, aggregated so the output stays bounded at fleet scale.
  bool fleet = false;
  /// Optional `--fleet-metrics` rollup CSV (`vmig_sim --fleet-metrics`,
  /// obs::Rollup::write_csv): cross-checks the record-derived fleet totals
  /// against the rollup's terminal snapshot, exactly. Implies `fleet`.
  std::string fleet_metrics_path;
};

/// Analyze `opt.record_path` and print the report to `out` (diagnostics to
/// `err`). Returns the process exit status: 0 = every reconciliation check
/// passed, 1 = at least one [FAIL], 2 = unreadable or malformed input.
int run(const Options& opt, std::ostream& out, std::ostream& err);

}  // namespace vmig::analyze
