// vmig_analyze — post-mortem attribution over a migration flight record.
//
//   vmig_sim --workload build --flight-record flight.jsonl --metrics m.csv
//   vmig_analyze flight.jsonl --metrics m.csv
//
// Prints downtime attribution, pre-copy waste, post-copy degradation, and
// per-job SLO accounting, reconciling the recorder's aggregates against the
// engine's MigrationReport byte-for-byte (docs/ANALYSIS.md). Exit status:
// 0 = all checks pass, 1 = a reconciliation check failed, 2 = bad input.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "analyze.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s RECORD.jsonl [options]\n"
      "  --metrics FILE   cross-check against the run's --metrics CSV\n"
      "  --top K          hottest-blocks rows to print (default 8)\n"
      "  --fleet          derive fleet totals and reconcile every job\n"
      "                   against its terminal attempt's MigrationReport\n"
      "  --fleet-metrics FILE\n"
      "                   also cross-check the totals against the run's\n"
      "                   --fleet-metrics rollup CSV (implies --fleet)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  vmig::analyze::Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--metrics") {
      opt.metrics_path = need("--metrics");
    } else if (a == "--fleet") {
      opt.fleet = true;
    } else if (a == "--fleet-metrics") {
      opt.fleet_metrics_path = need("--fleet-metrics");
    } else if (a == "--top") {
      opt.top_k = std::strtoull(need("--top"), nullptr, 10);
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", a.c_str());
      usage(argv[0]);
      return 2;
    } else if (opt.record_path.empty()) {
      opt.record_path = a;
    } else {
      std::fprintf(stderr, "error: more than one record path\n");
      usage(argv[0]);
      return 2;
    }
  }
  if (opt.record_path.empty()) {
    usage(argv[0]);
    return 2;
  }
  return vmig::analyze::run(opt, std::cout, std::cerr);
}
