// vmig_lint core: token-level determinism, coroutine-safety, hot-path
// allocation, and include-layering checks.
//
// The scanner deliberately avoids a real C++ frontend: it scrubs comments
// and literals, tokenizes what remains, and pattern-matches rule violations
// on the token stream. The C-rules add a lightweight scope model on top
// (brace-depth stack with function/lambda-body "barrier" detection) — still
// no AST, but enough to see RAII lifetimes and references spanning a
// co_await. The L-rules work on the include graph across the whole scanned
// set. That is enough to catch every construct the rules target, costs
// nothing to build, and keeps the tool dependency-free. The price is a
// small false-positive surface, which the per-line suppression syntax
// (`// vmig-lint: d3-ok -- justification`) covers.

#include "lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>

namespace vmig::lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Source text with comments and string/char literals blanked to spaces
/// (newlines preserved, so offsets and line numbers survive), plus the
/// comment text per line for suppression parsing.
struct Scrubbed {
  std::string code;
  std::vector<std::string> comments;    // comment text on each 1-based line
  std::vector<bool> code_blank;         // line has no code outside comments
};

Scrubbed scrub(const std::string& in) {
  Scrubbed out;
  out.code.assign(in.size(), ' ');
  const auto line_count =
      static_cast<std::size_t>(std::count(in.begin(), in.end(), '\n')) + 2;
  out.comments.assign(line_count, std::string{});
  out.code_blank.assign(line_count, true);

  enum class State { kCode, kLine, kBlock, kStr, kChar, kRaw };
  State st = State::kCode;
  std::string raw_delim;  // for raw strings: the `)delim"` terminator
  std::size_t line = 1;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char n = i + 1 < in.size() ? in[i + 1] : '\0';
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
      if (st == State::kLine) st = State::kCode;
      continue;
    }
    switch (st) {
      case State::kCode:
        if (c == '/' && n == '/') {
          st = State::kLine;
        } else if (c == '/' && n == '*') {
          st = State::kBlock;
          ++i;
        } else if (c == '"' && i > 0 && in[i - 1] == 'R') {
          // Raw string literal: R"delim( ... )delim"
          std::size_t p = i + 1;
          std::string d;
          while (p < in.size() && in[p] != '(') d += in[p++];
          raw_delim = ")" + d + "\"";
          st = State::kRaw;
        } else if (c == '"') {
          st = State::kStr;
        } else if (c == '\'' && i > 0 && ident_char(in[i - 1]) &&
                   ident_char(n)) {
          // Digit separator (1'000'000) — part of a numeric literal.
          out.code[i] = ' ';
        } else if (c == '\'') {
          st = State::kChar;
        } else {
          out.code[i] = c;
          if (!std::isspace(static_cast<unsigned char>(c))) {
            out.code_blank[line] = false;
          }
        }
        break;
      case State::kLine:
        out.comments[line] += c;
        break;
      case State::kBlock:
        out.comments[line] += c;
        if (c == '*' && n == '/') {
          st = State::kCode;
          ++i;
        }
        break;
      case State::kStr:
        if (c == '\\') {
          ++i;
          if (i < in.size() && in[i] == '\n') ++line;
        } else if (c == '"') {
          st = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = State::kCode;
        }
        break;
      case State::kRaw:
        if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = State::kCode;
        } else if (c == '\n') {
          ++line;  // unreachable (handled above) but kept for clarity
        }
        break;
    }
  }
  return out;
}

struct Token {
  std::string text;
  std::size_t offset = 0;
};

std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> toks;
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < code.size() && ident_char(code[j])) ++j;
      toks.push_back({code.substr(i, j - i), i});
      i = j;
      continue;
    }
    if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      toks.push_back({"::", i});
      i += 2;
      continue;
    }
    toks.push_back({std::string(1, c), i});
    ++i;
  }
  return toks;
}

/// Offset -> 1-based line number.
class LineIndex {
 public:
  explicit LineIndex(const std::string& s) {
    starts_.push_back(0);
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '\n') starts_.push_back(i + 1);
    }
  }
  int line_of(std::size_t offset) const {
    const auto it =
        std::upper_bound(starts_.begin(), starts_.end(), offset);
    return static_cast<int>(it - starts_.begin());
  }

 private:
  std::vector<std::size_t> starts_;
};

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Suppression and region state for one file.
///
/// All forms anchor on a `vmig-lint:` comment tag followed by words:
///  - per-line: `// vmig-lint: d1-ok d3-ok -- why` suppresses those rules on
///    that line; a comment-only line extends them to the next line.
///  - region:   `// vmig-lint: d1-begin -- why` ... `// vmig-lint: d1-end`
///    suppresses the rule on every line from begin through end inclusive.
///    Regions exist for sanctioned pens (e.g. the profiler's wall-clock
///    block) where per-line waivers would drown the justification.
///  - hot pen:  `// vmig-lint: hot-begin -- name` ... `// vmig-lint: hot-end`
///    is the inverse of a suppression: it arms the H-rules (hot-path
///    allocation hygiene) for the enclosed lines.
///
/// Every `-ok` and `-begin` word must carry a `-- why` justification on the
/// same line; a bare one is reported as a fixable `fixme` finding. A begin
/// with no matching end is itself reported as a finding of the rule it
/// names — otherwise a typo'd pen would silently waive (or arm) the rest of
/// the file. The region still applies through EOF so the report stays
/// focused on the one real problem (the missing end).
struct SuppressionMap {
  std::map<int, std::set<std::string>> by_line;
  std::vector<std::pair<std::string, int>> unclosed;  // rule, begin line
  std::vector<std::pair<int, int>> hot_ranges;        // inclusive line spans
  std::vector<int> hot_unclosed;                      // begin lines
  std::vector<std::pair<int, std::string>> fixmes;    // line, attributed rule

  bool in_hot(int line) const {
    for (const auto& [b, e] : hot_ranges) {
      if (line >= b && line <= e) return true;
    }
    return false;
  }
};

/// A recognized suppression word: `d3-ok`, `c1-begin`, `h2-end`, ...
/// Returns the canonical rule id ("D3") and sets `verb`; empty if the word
/// is not of that shape.
std::string parse_rule_word(const std::string& w, std::string* verb) {
  const auto dash = w.find('-');
  if (dash != 2 || w.size() < 5) return {};
  if (std::isalpha(static_cast<unsigned char>(w[0])) == 0 ||
      std::isdigit(static_cast<unsigned char>(w[1])) == 0) {
    return {};
  }
  const std::string v = w.substr(3);
  if (v != "ok" && v != "begin" && v != "end") return {};
  *verb = v;
  std::string rule{static_cast<char>(std::toupper(
      static_cast<unsigned char>(w[0])))};
  rule += w[1];
  return rule;
}

SuppressionMap suppressions(const Scrubbed& s) {
  SuppressionMap out;
  std::map<std::string, int> open;  // rule -> line of first unmatched begin
  int hot_open = -1;
  const int last_line = static_cast<int>(s.comments.size()) - 1;
  for (std::size_t ln = 1; ln < s.comments.size(); ++ln) {
    const std::string c = lower(s.comments[ln]);
    std::set<std::string> oks;
    std::set<std::string> begins;
    std::set<std::string> ends;
    bool hot_begin = false;
    bool hot_end = false;
    bool justified = true;
    // A line may carry several `vmig-lint:` tags (doc prose quoting both a
    // begin and its end); each tag starts a fresh word segment. Words are
    // whitespace-split up to a standalone `--` separator; everything after
    // the `--` (until the next tag) is that segment's justification.
    for (std::size_t tag = c.find("vmig-lint:"); tag != std::string::npos;
         tag = c.find("vmig-lint:", tag + 10)) {
      const std::size_t seg_end = std::min(c.find("vmig-lint:", tag + 10),
                                           c.size());
      std::size_t i = tag + 10;
      bool seg_needs_just = false;
      bool seg_justified = false;
      while (i < seg_end) {
        while (i < seg_end &&
               std::isspace(static_cast<unsigned char>(c[i])) != 0) {
          ++i;
        }
        std::size_t j = i;
        while (j < seg_end &&
               std::isspace(static_cast<unsigned char>(c[j])) == 0) {
          ++j;
        }
        if (j == i) break;
        std::string w = c.substr(i, j - i);
        i = j;
        if (w == "--") {
          seg_justified = c.find_first_not_of(" \t", i) < seg_end;
          break;
        }
        // Trim doc-prose punctuation (backticks, commas) off the ends so
        // only clean words match; anything left over is ignored free text.
        while (!w.empty() && !ident_char(w.front())) w.erase(w.begin());
        while (!w.empty() && !ident_char(w.back())) w.pop_back();
        if (w == "hot-begin") {
          hot_begin = true;
          seg_needs_just = true;
        } else if (w == "hot-end") {
          hot_end = true;
        } else {
          std::string verb;
          const std::string rule = parse_rule_word(w, &verb);
          if (rule.empty()) continue;
          if (verb == "ok") {
            oks.insert(rule);
            seg_needs_just = true;
          } else if (verb == "begin") {
            begins.insert(rule);
            seg_needs_just = true;
          } else {
            ends.insert(rule);
          }
        }
      }
      if (seg_needs_just && !seg_justified) justified = false;
    }
    if ((!oks.empty() || !begins.empty() || hot_begin) && !justified) {
      std::string attributed = "H1";
      if (!oks.empty()) attributed = *oks.begin();
      else if (!begins.empty()) attributed = *begins.begin();
      out.fixmes.emplace_back(static_cast<int>(ln), attributed);
    }
    // Begins take effect on their own line; ends lapse after theirs, so
    // both delimiter lines are covered by the region.
    for (const auto& r : begins) open.emplace(r, static_cast<int>(ln));
    std::set<std::string> cover = oks;
    for (const auto& [r, at] : open) cover.insert(r);
    if (!cover.empty()) {
      out.by_line[static_cast<int>(ln)].insert(cover.begin(), cover.end());
    }
    if (!oks.empty() && s.code_blank[ln]) {
      // Standalone per-line suppression comment: applies to the line below.
      out.by_line[static_cast<int>(ln) + 1].insert(oks.begin(), oks.end());
    }
    for (const auto& r : ends) open.erase(r);
    if (hot_begin && hot_open < 0) hot_open = static_cast<int>(ln);
    if (hot_end && hot_open >= 0) {
      out.hot_ranges.emplace_back(hot_open, static_cast<int>(ln));
      hot_open = -1;
    }
  }
  for (const auto& [rule, line] : open) out.unclosed.emplace_back(rule, line);
  if (hot_open >= 0) {
    out.hot_unclosed.push_back(hot_open);
    out.hot_ranges.emplace_back(hot_open, last_line);
  }
  return out;
}

bool path_matches(const std::string& path, const std::vector<std::string>& list) {
  return std::any_of(list.begin(), list.end(), [&](const std::string& s) {
    return !s.empty() && path.find(s) != std::string::npos;
  });
}

bool is_header(const std::string& path) {
  return path.ends_with(".hpp") || path.ends_with(".h") || path.ends_with(".hh");
}

struct RuleInfo {
  const char* id;
  const char* rationale;
};

constexpr std::array<RuleInfo, 12> kRules{{
    {"D1",
     "wall-clock reads break replay determinism; derive all time from the "
     "simulator clock (sim::Simulator::now)"},
    {"D2",
     "ambient randomness makes runs irreproducible; draw from the "
     "explicitly-seeded sim::Rng instead"},
    {"D3",
     "hash-map iteration order depends on allocator/layout and leaks into "
     "exports and reports; use an ordered container, sort before iterating, "
     "or suppress with a justification"},
    {"D4",
     "environment reads smuggle configuration past the CLI and replay "
     "layers; plumb options explicitly (allow-listed config shims only)"},
    {"D5",
     "hygiene: headers need #pragma once, no using-namespace at header "
     "scope, no raw new/delete outside allow-listed files (use RAII)"},
    {"C1",
     "RAII probes and guards (ProfScope, lock guards) must close before a "
     "co_await: a suspension can last simulated hours of other work, "
     "corrupting the measurement or holding the guard across turns"},
    {"C2",
     "references, pointers, and iterators into containers are invalidated "
     "when other coroutines mutate the container during a suspension; "
     "re-look-up after every co_await"},
    {"C3",
     "a by-reference lambda capture handed to the scheduler outlives the "
     "caller's stack frame; capture by value (copy or pointer)"},
    {"H1",
     "hot regions are the per-event inner loops; a single heap allocation "
     "there dominates the profile at datacenter scale (see bench_scale)"},
    {"H2",
     "growth-capable container ops and string building allocate once "
     "capacity runs out; reserve up front, reuse buffers, or justify why "
     "steady state is allocation-free"},
    {"L1",
     "includes must point down (or across) the layer DAG in "
     "tools/lint/layers.txt; a back-edge couples low layers to high ones "
     "and blocks splitting the build"},
    {"L2",
     "include cycles make headers order-dependent and unsplittable; break "
     "the cycle with a forward declaration or an interface header"},
}};

const char* rationale_of(const std::string& id) {
  for (const auto& r : kRules) {
    if (id == r.id) return r.rationale;
  }
  return "";
}

class Scanner {
 public:
  Scanner(const std::string& path, const std::string& content,
          const Options& opts)
      : path_{path},
        opts_{opts},
        scrubbed_{scrub(content)},
        toks_{tokenize(scrubbed_.code)},
        lines_{scrubbed_.code},
        suppr_{suppressions(scrubbed_)} {
    match_.assign(toks_.size(), kNpos);
    std::vector<std::size_t> paren;
    std::vector<std::size_t> bracket;
    std::vector<std::size_t> brace;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const std::string& t = toks_[i].text;
      if (t == "(") paren.push_back(i);
      else if (t == "[") bracket.push_back(i);
      else if (t == "{") brace.push_back(i);
      else if (t == ")" && !paren.empty()) {
        match_[paren.back()] = i;
        match_[i] = paren.back();
        paren.pop_back();
      } else if (t == "]" && !bracket.empty()) {
        match_[bracket.back()] = i;
        match_[i] = bracket.back();
        bracket.pop_back();
      } else if (t == "}" && !brace.empty()) {
        match_[brace.back()] = i;
        match_[i] = brace.back();
        brace.pop_back();
      }
    }
  }

  std::vector<Finding> run() {
    if (fam('D')) {
      scan_wall_clock();
      scan_randomness();
      scan_unordered_iteration();
      scan_getenv();
      scan_hygiene();
    }
    if (fam('C')) scan_coroutine_safety();
    if (fam('H')) scan_hot_regions();
    // Unclosed regions and unjustified suppressions bypass add(): the
    // offending comment covers its own line, so the suppression lookup
    // would swallow its own diagnostic.
    for (const auto& [rule, line] : suppr_.unclosed) {
      if (!fam(rule[0])) continue;
      Finding f{path_, line, rule,
                "suppression region '" + lower(rule) +
                    "-begin' is never closed (missing '" + lower(rule) +
                    "-end')",
                rationale_of(rule)};
      f.fix = Finding::Fix::kCloseRegion;
      f.fix_arg = lower(rule);
      findings_.push_back(std::move(f));
    }
    for (const int line : suppr_.hot_unclosed) {
      if (!fam('H')) continue;
      Finding f{path_, line, "H1",
                "hot region 'hot-begin' is never closed (missing 'hot-end')",
                rationale_of("H1")};
      f.fix = Finding::Fix::kCloseRegion;
      f.fix_arg = "hot";
      findings_.push_back(std::move(f));
    }
    if (opts_.require_justification) {
      for (const auto& [line, rule] : suppr_.fixmes) {
        if (!fam(rule[0])) continue;
        Finding f{path_, line, rule,
                  "suppression comment missing its '-- why' justification "
                  "(fixme)",
                  rationale_of(rule)};
        f.fix = Finding::Fix::kAddJustification;
        findings_.push_back(std::move(f));
      }
    }
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    return std::move(findings_);
  }

 private:
  bool fam(char f) const {
    return opts_.families.empty() || opts_.families.count(f) > 0;
  }

  const std::string& tok(std::size_t i) const {
    static const std::string kEnd;
    return i < toks_.size() ? toks_[i].text : kEnd;
  }

  void add(const std::string& rule, std::size_t offset, std::string message) {
    const int line = lines_.line_of(offset);
    const auto it = suppr_.by_line.find(line);
    if (it != suppr_.by_line.end() && it->second.count(rule) > 0) return;
    findings_.push_back({path_, line, rule, std::move(message),
                         rationale_of(rule)});
  }

  // D1 — no wall-clock time sources.
  void scan_wall_clock() {
    static const std::set<std::string> kAlways{
        "system_clock",  "steady_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "timespec_get",
        "localtime",     "gmtime",        "mktime",
        "utc_clock",     "file_clock"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const std::string& t = toks_[i].text;
      if (kAlways.count(t) > 0) {
        add("D1", toks_[i].offset, "wall-clock source '" + t + "'");
      } else if ((t == "time" || t == "clock") && tok(i + 1) == "(") {
        add("D1", toks_[i].offset, "wall-clock call '" + t + "()'");
      }
    }
  }

  // D2 — no ambient nondeterminism.
  void scan_randomness() {
    static const std::set<std::string> kAlways{
        "random_device", "srand", "srandom", "rand_r", "drand48"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const std::string& t = toks_[i].text;
      if (kAlways.count(t) > 0) {
        add("D2", toks_[i].offset, "nondeterministic source '" + t + "'");
      } else if ((t == "rand" || t == "random") && tok(i + 1) == "(") {
        add("D2", toks_[i].offset, "nondeterministic call '" + t + "()'");
      } else if (t == "mt19937" || t == "mt19937_64") {
        scan_mt19937_at(i);
      }
    }
  }

  /// Flag default-constructed engines: `mt19937 g;`, `mt19937{}`,
  /// `mt19937()`. Seeded forms (`mt19937 g{seed}`, `mt19937(seed)`) pass;
  /// type aliases and template arguments are ignored.
  void scan_mt19937_at(std::size_t i) {
    std::size_t j = i + 1;
    if (ident_start(tok(j).empty() ? '\0' : tok(j)[0])) ++j;  // variable name
    const std::string& a = tok(j);
    const bool unseeded =
        (a == ";" && j > i + 1) ||
        (a == "(" && tok(j + 1) == ")") || (a == "{" && tok(j + 1) == "}");
    if (unseeded) {
      add("D2", toks_[i].offset,
          "default-constructed '" + toks_[i].text +
              "' (seed it from the experiment seed)");
    }
  }

  // D3 — no iteration over unordered containers.
  void scan_unordered_iteration() {
    const auto& names = opts_.unordered_names;
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      // Range-for: `for (` <decl> `:` <expr> `)` — flag when the last
      // identifier of <expr> names an unordered container.
      if (toks_[i].text == "for" && tok(i + 1) == "(") {
        std::size_t j = i + 2;
        int depth = 1;
        bool range_for = false;
        for (; j < toks_.size() && depth > 0; ++j) {
          const std::string& t = toks_[j].text;
          if (t == "(") ++depth;
          else if (t == ")") --depth;
          else if (t == ";" && depth == 1) break;  // classic for
          else if (t == ":" && depth == 1) {
            range_for = true;
            break;
          }
        }
        if (!range_for) continue;
        std::size_t last_ident = 0;
        bool have = false;
        for (std::size_t k = j + 1; k < toks_.size(); ++k) {
          const std::string& t = toks_[k].text;
          if (t == "(") ++depth;
          if (t == ")") {
            if (depth == 1) break;
            --depth;
          }
          if (ident_start(t[0])) {
            last_ident = k;
            have = true;
          }
        }
        if (have && names.count(toks_[last_ident].text) > 0) {
          add("D3", toks_[last_ident].offset,
              "range-for over unordered container '" +
                  toks_[last_ident].text + "'");
        }
      }
      // Iterator loop: `name.begin()` / `name.cbegin()` on an unordered name.
      if (names.count(toks_[i].text) > 0 &&
          (tok(i + 1) == "." || tok(i + 1) == "->") &&
          (tok(i + 2) == "begin" || tok(i + 2) == "cbegin")) {
        add("D3", toks_[i].offset,
            "iterator walk over unordered container '" + toks_[i].text + "'");
      }
    }
  }

  // D4 — no getenv outside the config-shim allowlist.
  void scan_getenv() {
    if (path_matches(path_, opts_.getenv_allowlist)) return;
    for (const auto& t : toks_) {
      if (t.text == "getenv" || t.text == "secure_getenv") {
        add("D4", t.offset, "environment read '" + t.text + "'");
      }
    }
  }

  // D5 — hygiene.
  void scan_hygiene() {
    if (is_header(path_)) {
      bool pragma_once = false;
      for (std::size_t i = 0; i + 2 < toks_.size(); ++i) {
        if (toks_[i].text == "#" && tok(i + 1) == "pragma" &&
            tok(i + 2) == "once") {
          pragma_once = true;
          break;
        }
      }
      if (!pragma_once) add("D5", 0, "header missing '#pragma once'");
      for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
        if (toks_[i].text == "using" && tok(i + 1) == "namespace") {
          add("D5", toks_[i].offset, "'using namespace' in a header");
        }
      }
    }
    if (!path_matches(path_, opts_.new_delete_allowlist)) {
      for (std::size_t i = 0; i < toks_.size(); ++i) {
        const std::string& t = toks_[i].text;
        if (t == "new") {
          add("D5", toks_[i].offset, "raw 'new' (prefer make_unique/RAII)");
        } else if (t == "delete" && (i == 0 || toks_[i - 1].text != "=")) {
          // `= delete;` declares a deleted function and is fine.
          add("D5", toks_[i].offset, "raw 'delete' (prefer RAII ownership)");
        }
      }
    }
  }

  /// Is the `{` at token index `brace` a function or lambda body — i.e. a
  /// scope whose frame owns the co_awaits inside it? The C1/C2 walk stops
  /// at the first such barrier: an outer function's locals are not at risk
  /// from a suspension inside a nested lambda's own frame.
  bool is_barrier(std::size_t brace) const {
    if (brace == 0) return false;
    std::size_t j = brace - 1;
    int guard = 0;
    // Skip trailing function specifiers.
    while (j > 0 && guard++ < 8) {
      const std::string& t = toks_[j].text;
      if (t == "const" || t == "noexcept" || t == "override" ||
          t == "final" || t == "mutable" || t == "try") {
        --j;
        continue;
      }
      break;
    }
    // Skip a trailing return type (`) -> Task<void>`): walk back over
    // type-ish tokens until the parameter-list `)` (or a lambda's `]`).
    guard = 0;
    std::size_t k = j;
    while (k > 0 && guard++ < 24) {
      const std::string& t = toks_[k].text;
      if (t == ")" || t == "]") break;
      if (t == "<" || t == ">" || t == "::" || t == "&" || t == "*" ||
          t == "," || t == "-" || (!t.empty() && ident_start(t[0]))) {
        --k;
        continue;
      }
      return false;
    }
    const std::string& t = toks_[k].text;
    if (t == "]") return true;  // parameterless lambda: `[this] { ... }`
    if (t != ")") return false;
    const std::size_t open = match_[k];
    if (open == kNpos || open == 0) return false;
    const std::string& b = toks_[open - 1].text;
    // Control-flow parens introduce plain scopes, not frames.
    return b != "if" && b != "while" && b != "for" && b != "switch" &&
           b != "catch";
  }

  /// Scan the initializer tokens from just past `eq` to the terminating
  /// `;` and report whether the value is element-ish — an element access
  /// (`[`), a container accessor (.front()/.at()/.data()/...), or an
  /// iterator-returning call. Sets `*iter` when it is the latter.
  bool elementish_init(std::size_t eq, bool* iter) const {
    static const std::set<std::string> kAccess{
        "front", "back", "at", "top", "data"};
    static const std::set<std::string> kIter{
        "begin", "cbegin", "rbegin",     "crbegin",     "end",  "cend",
        "rend",  "crend",  "find",       "lower_bound", "upper_bound",
        "equal_range"};
    int depth = 0;
    bool hit = false;
    for (std::size_t j = eq + 1; j < toks_.size(); ++j) {
      const std::string& t = toks_[j].text;
      if (t == "(" || t == "{") {
        ++depth;
      } else if (t == ")" || t == "}") {
        // A close below the start depth ends the initializer too: the decl
        // may live in an if/while condition with no trailing semicolon.
        if (--depth < 0) break;
      } else if (t == ";" && depth <= 0) {
        break;
      }
      if (t == "[") {
        hit = true;
      } else if ((t == "." || (t == ">" && j > 0 && tok(j - 1) == "-")) &&
                 tok(j + 2) == "(") {
        const std::string& m = tok(j + 1);
        if (kAccess.count(m) > 0) hit = true;
        if (kIter.count(m) > 0) {
          hit = true;
          *iter = true;
        }
      }
    }
    return hit;
  }

  // C1/C2/C3 — coroutine safety, via a brace-depth scope model.
  void scan_coroutine_safety() {
    struct PenDecl {
      std::string type;
      std::string name;
      std::size_t offset;
      bool flagged = false;
    };
    struct RefDecl {
      std::string name;
      std::string kind;
      bool crossed = false;
      bool flagged = false;
    };
    struct Scope {
      bool barrier = false;
      std::vector<PenDecl> pens;
      std::vector<RefDecl> refs;
    };
    static const std::set<std::string> kSched{"schedule_at", "schedule_after",
                                              "schedule", "post"};
    std::vector<Scope> scopes;
    // A co_await arms a "crossing" that is applied at the end of its
    // statement: tokens inside the await expression itself run before the
    // suspension, so only uses on later statements are stale.
    bool cross_pending = false;
    const auto flush_cross = [&] {
      if (!cross_pending) return;
      cross_pending = false;
      for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
        for (auto& p : it->pens) {
          if (p.flagged) continue;
          p.flagged = true;
          add("C1", p.offset,
              "RAII '" + p.type + " " + p.name +
                  "' is live across a co_await (close the scope before "
                  "suspending)");
        }
        for (auto& r : it->refs) r.crossed = true;
        if (it->barrier) break;
      }
    };

    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const std::string& t = toks_[i].text;
      if (t == "{") {
        flush_cross();
        scopes.push_back(Scope{is_barrier(i), {}, {}});
        continue;
      }
      if (t == "}") {
        flush_cross();
        if (!scopes.empty()) scopes.pop_back();
        continue;
      }
      if (t == ";") {
        flush_cross();
        continue;
      }
      if (t == "co_await" || t == "co_yield") {
        cross_pending = true;
        continue;
      }
      if (t.empty() || scopes.empty()) continue;

      // C1: local RAII decl of a pen-listed type.
      if (opts_.raii_pen_types.count(t) > 0) {
        const std::string& prev = tok(i ? i - 1 : 0);
        if (i > 0 && (prev == "class" || prev == "struct" || prev == "~")) {
          continue;  // definition or destructor, not a declaration
        }
        std::size_t j = i + 1;
        if (tok(j) == "<") {  // template args: ProfScope-ish wrappers
          int d = 0;
          for (; j < toks_.size(); ++j) {
            if (toks_[j].text == "<") ++d;
            else if (toks_[j].text == ">" && --d == 0) {
              ++j;
              break;
            } else if (toks_[j].text == ";" || toks_[j].text == "{") {
              break;
            }
          }
        }
        const std::string& nm = tok(j);
        if (!nm.empty() && ident_start(nm[0])) {
          const std::string& after = tok(j + 1);
          if (after == "{" || after == "(" || after == ";" || after == "=") {
            scopes.back().pens.push_back({t, nm, toks_[i].offset, false});
          }
        }
      }

      // C3: by-reference lambda capture handed to the scheduler.
      if (kSched.count(t) > 0 && tok(i + 1) == "(") {
        const std::size_t close = match_[i + 1];
        for (std::size_t j = i + 2; close != kNpos && j < close; ++j) {
          if (toks_[j].text != "[") continue;
          const std::string& before = toks_[j - 1].text;
          if (before != "(" && before != ",") continue;  // subscript, not intro
          const std::size_t cend = match_[j];
          if (cend == kNpos || cend > close) continue;
          for (std::size_t k = j + 1; k < cend; ++k) {
            if (toks_[k].text == "&") {
              add("C3", toks_[j].offset,
                  "lambda passed to '" + t +
                      "' captures by reference (the callback outlives this "
                      "frame; capture by value)");
              break;
            }
          }
        }
      }

      // C2: reference/pointer/iterator bound to a container element.
      if ((t == "&" || t == "*") && i > 0) {
        const std::string& nm = tok(i + 1);
        const std::string& prev = toks_[i - 1].text;
        const bool typed = prev == "auto" || prev == "const" || prev == ">" ||
                           prev == "&" ||
                           (!prev.empty() && ident_start(prev[0]) &&
                            prev != "return" && prev != "co_return");
        if (typed && !nm.empty() && ident_start(nm[0]) &&
            tok(i + 2) == "=" && tok(i + 3) != "=") {
          bool iter = false;
          if (elementish_init(i + 2, &iter)) {
            scopes.back().refs.push_back(
                {nm, t == "&" ? "reference" : "pointer", false, false});
          }
          continue;  // don't treat `nm` below as a use of an outer decl
        }
      }
      if (t == "auto") {
        const std::string& nm = tok(i + 1);
        if (!nm.empty() && ident_start(nm[0]) && tok(i + 2) == "=" &&
            tok(i + 3) != "=") {
          bool iter = false;
          elementish_init(i + 2, &iter);
          if (iter) {
            scopes.back().refs.push_back({nm, "iterator", false, false});
          }
        }
      }

      // C2: use of a tracked name after a crossing.
      if (ident_start(t[0])) {
        bool found = false;
        for (auto it = scopes.rbegin(); !found && it != scopes.rend(); ++it) {
          for (auto& r : it->refs) {
            if (r.name != t) continue;
            found = true;
            if (r.crossed && !r.flagged) {
              if (tok(i + 1) == "=" && tok(i + 2) != "=") {
                r.crossed = false;  // rebound to a fresh value: fine again
              } else {
                r.flagged = true;
                add("C2", toks_[i].offset,
                    "'" + t + "' (" + r.kind +
                        " into a container) is used after a co_await in the "
                        "same scope");
              }
            }
            break;
          }
        }
      }
    }
  }

  // H1/H2 — allocation hygiene inside `hot-begin`/`hot-end` pens.
  void scan_hot_regions() {
    static const std::set<std::string> kGrowth{
        "push_back", "emplace_back", "push_front", "emplace_front",
        "insert",    "emplace",      "try_emplace", "resize",
        "append",    "assign"};
    if (suppr_.hot_ranges.empty()) return;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (!suppr_.in_hot(lines_.line_of(toks_[i].offset))) continue;
      const std::string& t = toks_[i].text;
      if (t == "new") {
        add("H1", toks_[i].offset, "heap allocation 'new' in a hot region");
      } else if (t == "make_unique" || t == "make_shared") {
        add("H1", toks_[i].offset,
            "heap allocation '" + t + "' in a hot region");
      } else if (t == "function" && tok(i + 1) == "<") {
        add("H1", toks_[i].offset,
            "'std::function' in a hot region (type-erased callables "
            "allocate)");
      } else if (kGrowth.count(t) > 0 && tok(i + 1) == "(" && i > 0 &&
                 (toks_[i - 1].text == "." ||
                  (i > 1 && toks_[i - 1].text == ">" &&
                   toks_[i - 2].text == "-"))) {
        add("H2", toks_[i].offset,
            "growth-capable container op '" + t +
                "()' in a hot region (reserve up front or reuse storage)");
      } else if (t == "to_string" && tok(i + 1) == "(") {
        add("H2", toks_[i].offset,
            "string building 'to_string()' in a hot region");
      }
    }
  }

  std::string path_;
  const Options& opts_;
  Scrubbed scrubbed_;
  std::vector<Token> toks_;
  LineIndex lines_;
  SuppressionMap suppr_;
  std::vector<std::size_t> match_;
  std::vector<Finding> findings_;
};

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kIds = [] {
    std::vector<std::string> v;
    for (const auto& r : kRules) v.emplace_back(r.id);
    return v;
  }();
  return kIds;
}

std::string rule_rationale(const std::string& rule) {
  return rationale_of(rule);
}

std::set<std::string> collect_unordered_names(const std::string& content) {
  // Declarations look like `std::unordered_map<K, V> name...;` — find the
  // container keyword, skip the template argument list by angle-bracket
  // depth, and take the next identifier. Misses exotic spellings (aliases,
  // decltype) by design; those need an explicit suppression at the loop.
  std::set<std::string> names;
  const Scrubbed s = scrub(content);
  const auto toks = tokenize(s.code);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text != "unordered_map" && toks[i].text != "unordered_set" &&
        toks[i].text != "unordered_multimap" &&
        toks[i].text != "unordered_multiset") {
      continue;
    }
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "<") ++depth;
      else if (toks[j].text == ">") {
        if (--depth == 0) {
          ++j;
          break;
        }
      } else if (toks[j].text == ";") {
        break;  // malformed / not a declaration
      }
    }
    // Skip ref/pointer/cv decorations so parameter names are caught too.
    while (j < toks.size() && (toks[j].text == "&" || toks[j].text == "*" ||
                               toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && !toks[j].text.empty() &&
        ident_start(toks[j].text[0])) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

std::vector<Finding> lint_content(const std::string& path,
                                  const std::string& content,
                                  const Options& opts) {
  return Scanner{path, content, opts}.run();
}

// --- L-rules -------------------------------------------------------------

std::vector<IncludeEdge> collect_includes(const std::string& content) {
  std::vector<IncludeEdge> out;
  int line = 0;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    const std::size_t eol = content.find('\n', pos);
    const std::size_t len =
        (eol == std::string::npos ? content.size() : eol) - pos;
    const std::string l = content.substr(pos, len);
    ++line;
    const std::size_t a = l.find_first_not_of(" \t");
    if (a != std::string::npos && l[a] == '#') {
      const std::size_t b = l.find_first_not_of(" \t", a + 1);
      if (b != std::string::npos && l.compare(b, 7, "include") == 0) {
        const std::size_t q1 = l.find('"', b + 7);
        const std::size_t q2 =
            q1 == std::string::npos ? q1 : l.find('"', q1 + 1);
        if (q2 != std::string::npos) {
          IncludeEdge e;
          e.line = line;
          e.target = l.substr(q1 + 1, q2 - q1 - 1);
          if (l.find("vmig-lint:") != std::string::npos) {
            e.l1_ok = l.find("l1-ok") != std::string::npos;
            e.l2_ok = l.find("l2-ok") != std::string::npos;
          }
          out.push_back(std::move(e));
        }
      }
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return out;
}

std::string normalize_include_path(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    const std::size_t len =
        (slash == std::string::npos ? path.size() : slash) - pos;
    if (len > 0) {
      const std::string p = path.substr(pos, len);
      if (p != ".") parts.push_back(p);
    }
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
  // Everything up to and including the last `src/` is repo scaffolding;
  // tool/test/bench/example roots are themselves layer prefixes.
  std::size_t start = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == "src") start = i + 1;
  }
  if (start == 0) {
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (parts[i] == "tools" || parts[i] == "tests" || parts[i] == "bench" ||
          parts[i] == "examples") {
        start = i;
        break;
      }
    }
  }
  std::string out;
  for (std::size_t i = start; i < parts.size(); ++i) {
    if (!out.empty()) out += '/';
    out += parts[i];
  }
  return out.empty() ? path : out;
}

int Layers::layer_of(const std::string& norm) const {
  int best = -1;
  std::size_t best_len = 0;
  for (std::size_t li = 0; li < layers.size(); ++li) {
    for (const auto& p : layers[li].prefixes) {
      if (p.size() >= best_len && norm.compare(0, p.size(), p) == 0) {
        best = static_cast<int>(li);
        best_len = p.size();
      }
    }
  }
  return best;
}

std::string Layers::name_of(int layer) const {
  if (layer < 0 || layer >= static_cast<int>(layers.size())) return "?";
  return layers[static_cast<std::size_t>(layer)].name;
}

Layers Layers::parse(const std::string& text) {
  Layers out;
  int line = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t len =
        (eol == std::string::npos ? text.size() : eol) - pos;
    std::string l = text.substr(pos, len);
    ++line;
    const std::size_t hash = l.find('#');
    if (hash != std::string::npos) l.resize(hash);
    const std::size_t a = l.find_first_not_of(" \t");
    if (a != std::string::npos) {
      if (l.compare(a, 6, "layer ") != 0) {
        out.parse_error = "line " + std::to_string(line) +
                          ": expected `layer <name>: <prefix>...`";
        return out;
      }
      const std::size_t colon = l.find(':', a);
      if (colon == std::string::npos) {
        out.parse_error =
            "line " + std::to_string(line) + ": missing ':' after layer name";
        return out;
      }
      Layer layer;
      const std::size_t n0 = l.find_first_not_of(" \t", a + 6);
      layer.name = l.substr(n0, colon - n0);
      while (!layer.name.empty() && layer.name.back() == ' ') {
        layer.name.pop_back();
      }
      std::size_t p = colon + 1;
      while (p < l.size()) {
        while (p < l.size() && (l[p] == ' ' || l[p] == '\t')) ++p;
        std::size_t q = p;
        while (q < l.size() && l[q] != ' ' && l[q] != '\t') ++q;
        if (q > p) layer.prefixes.push_back(l.substr(p, q - p));
        p = q;
      }
      if (layer.name.empty() || layer.prefixes.empty()) {
        out.parse_error = "line " + std::to_string(line) +
                          ": layer needs a name and at least one prefix";
        return out;
      }
      out.layers.push_back(std::move(layer));
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  if (out.layers.empty()) out.parse_error = "no layers defined";
  return out;
}

namespace {

/// Resolve an include target against the scanned set: exact normalized
/// match first, then unique-suffix match (shortest, then lexicographically
/// smallest, for determinism). -1 when the target is outside the set.
int resolve_target(const std::vector<FileIncludes>& files,
                   const std::map<std::string, int>& by_norm,
                   const std::string& target) {
  const std::string norm = normalize_include_path(target);
  const auto it = by_norm.find(norm);
  if (it != by_norm.end()) return it->second;
  int best = -1;
  for (std::size_t j = 0; j < files.size(); ++j) {
    const std::string& n = files[j].norm;
    if (n.size() <= target.size() ||
        n.compare(n.size() - target.size(), target.size(), target) != 0 ||
        n[n.size() - target.size() - 1] != '/') {
      continue;
    }
    if (best < 0 || n.size() < files[best].norm.size() ||
        (n.size() == files[best].norm.size() && n < files[best].norm)) {
      best = static_cast<int>(j);
    }
  }
  return best;
}

}  // namespace

std::vector<Finding> check_layering(const std::vector<FileIncludes>& files,
                                    const Layers& layers) {
  std::vector<Finding> out;
  std::map<std::string, int> by_norm;
  for (std::size_t i = 0; i < files.size(); ++i) {
    by_norm[files[i].norm] = static_cast<int>(i);
  }
  // Resolved adjacency, reused by the cycle check.
  std::vector<std::vector<int>> adj(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    const int from = layers.layer_of(files[i].norm);
    if (from < 0) {
      out.push_back({files[i].path, 1, "L1",
                     "file '" + files[i].norm +
                         "' is not covered by any layer prefix in layers.txt",
                     rationale_of("L1")});
    }
    for (const auto& e : files[i].includes) {
      const int tgt = resolve_target(files, by_norm, e.target);
      if (tgt < 0) continue;  // system / generated header
      adj[i].push_back(tgt);
      const int to = layers.layer_of(files[tgt].norm);
      if (from >= 0 && to > from && !e.l1_ok) {
        out.push_back(
            {files[i].path, e.line, "L1",
             "layering back-edge: '" + files[i].norm + "' (layer '" +
                 layers.name_of(from) + "') includes '" + files[tgt].norm +
                 "' (higher layer '" + layers.name_of(to) + "')",
             rationale_of("L1")});
      }
    }
  }

  // File-level cycles via Tarjan SCC (iterative; the include graph is
  // shallow but recursion depth is unbounded in principle).
  const std::size_t n = files.size();
  std::vector<int> index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int next_index = 0;
  struct Frame {
    int v;
    std::size_t edge;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] >= 0) continue;
    std::vector<Frame> call{{static_cast<int>(root), 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(static_cast<int>(root));
    on_stack[root] = true;
    while (!call.empty()) {
      Frame& f = call.back();
      const auto v = static_cast<std::size_t>(f.v);
      if (f.edge < adj[v].size()) {
        const int w = adj[v][f.edge++];
        const auto wu = static_cast<std::size_t>(w);
        if (index[wu] < 0) {
          index[wu] = low[wu] = next_index++;
          stack.push_back(w);
          on_stack[wu] = true;
          call.push_back({w, 0});
        } else if (on_stack[wu]) {
          low[v] = std::min(low[v], index[wu]);
        }
      } else {
        if (low[v] == index[v]) {
          std::vector<int> scc;
          int w = -1;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            scc.push_back(w);
          } while (w != f.v);
          if (scc.size() > 1) sccs.push_back(std::move(scc));
        }
        const int done = f.v;
        call.pop_back();
        if (!call.empty()) {
          const auto p = static_cast<std::size_t>(call.back().v);
          low[p] = std::min(low[p], low[static_cast<std::size_t>(done)]);
        }
      }
    }
  }
  for (auto& scc : sccs) {
    std::sort(scc.begin(), scc.end(), [&](int a, int b) {
      return files[static_cast<std::size_t>(a)].norm <
             files[static_cast<std::size_t>(b)].norm;
    });
    const auto anchor = static_cast<std::size_t>(scc[0]);
    const std::set<int> members(scc.begin(), scc.end());
    int at_line = 1;
    bool suppressed = false;
    for (const auto& e : files[anchor].includes) {
      const int tgt = resolve_target(files, by_norm, e.target);
      if (tgt >= 0 && members.count(tgt) > 0) {
        at_line = e.line;
        suppressed = e.l2_ok;
        break;
      }
    }
    if (suppressed) continue;
    std::string path;
    for (const int m : scc) {
      if (!path.empty()) path += " <-> ";
      path += files[static_cast<std::size_t>(m)].norm;
    }
    out.push_back({files[anchor].path, at_line, "L2",
                   "include cycle: " + path, rationale_of("L2")});
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::string include_graph_dot(const std::vector<FileIncludes>& files,
                              const Layers& layers) {
  // One node per layer prefix that actually has files; edges are deduped
  // prefix->prefix includes. Deterministic: layers in DAG order, prefixes
  // in declaration order, edges sorted.
  const auto prefix_of = [&](const std::string& norm) -> std::string {
    std::string best;
    for (const auto& layer : layers.layers) {
      for (const auto& p : layer.prefixes) {
        if (p.size() >= best.size() && norm.compare(0, p.size(), p) == 0) {
          best = p;
        }
      }
    }
    return best.empty() ? std::string{"(unmapped)"} : best;
  };
  std::map<std::string, int> by_norm;
  for (std::size_t i = 0; i < files.size(); ++i) {
    by_norm[files[i].norm] = static_cast<int>(i);
  }
  std::set<std::string> used;
  std::set<std::pair<std::string, std::string>> edges;
  for (const auto& f : files) {
    const std::string from = prefix_of(f.norm);
    used.insert(from);
    for (const auto& e : f.includes) {
      const int tgt = resolve_target(files, by_norm, e.target);
      if (tgt < 0) continue;
      const std::string to = prefix_of(files[static_cast<std::size_t>(tgt)].norm);
      used.insert(to);
      if (to != from) edges.emplace(from, to);
    }
  }
  std::string dot;
  dot += "// Include-graph snapshot, one node per layer prefix.\n";
  dot += "// Regenerate: vmig_lint --layers tools/lint/layers.txt --dot <out>"
         " <dirs>\n";
  dot += "digraph includes {\n";
  dot += "  rankdir=BT;\n";
  dot += "  node [shape=box, fontname=\"monospace\"];\n";
  for (std::size_t li = 0; li < layers.layers.size(); ++li) {
    const auto& layer = layers.layers[li];
    dot += "  subgraph cluster_" + std::to_string(li) + " {\n";
    dot += "    label=\"" + layer.name + "\";\n";
    for (const auto& p : layer.prefixes) {
      if (used.count(p) > 0) dot += "    \"" + p + "\";\n";
    }
    dot += "  }\n";
  }
  for (const auto& [from, to] : edges) {
    dot += "  \"" + from + "\" -> \"" + to + "\";\n";
  }
  dot += "}\n";
  return dot;
}

// --- output & fixes ------------------------------------------------------

std::string apply_fixes(const std::string& content,
                        const std::vector<Finding>& findings, int* applied) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    const std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) {
      lines.push_back(content.substr(pos));
      break;
    }
    lines.push_back(content.substr(pos, eol - pos));
    pos = eol + 1;
  }
  const bool trailing_newline =
      !content.empty() && content.back() == '\n';

  int n = 0;
  std::set<std::string> closes;
  for (const auto& f : findings) {
    if (f.fix == Finding::Fix::kAddJustification) {
      const auto li = static_cast<std::size_t>(f.line - 1);
      if (f.line < 1 || li >= lines.size()) continue;
      std::string& l = lines[li];
      const std::size_t tag = l.find("vmig-lint:");
      if (tag == std::string::npos) continue;
      if (l.find("--", tag) != std::string::npos) continue;  // already fixed
      const std::size_t close = l.rfind("*/");
      if (close != std::string::npos && close > tag) {
        l.insert(close, "-- FIXME: justify ");
      } else {
        l += "  -- FIXME: justify";
      }
      ++n;
    } else if (f.fix == Finding::Fix::kCloseRegion && !f.fix_arg.empty()) {
      if (closes.insert(f.fix_arg).second) ++n;
    }
  }
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size()) out += '\n';
  }
  if (trailing_newline && (out.empty() || out.back() != '\n')) out += '\n';
  for (const auto& arg : closes) {
    if (!out.empty() && out.back() != '\n') out += '\n';
    out += "// vmig-lint: " + arg + "-end\n";
  }
  if (applied != nullptr) *applied = n;
  return out;
}

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ":" + f.rule + ": " +
         f.message + " (" + f.rationale + ")";
}

std::string format_finding_github(const Finding& f) {
  return "::error file=" + f.file + ",line=" + std::to_string(f.line) +
         "::" + f.rule + ": " + f.message;
}

}  // namespace vmig::lint
