// vmig_lint core: token-level determinism & hygiene checks.
//
// The scanner deliberately avoids a real C++ frontend: it scrubs comments
// and literals, tokenizes what remains, and pattern-matches rule violations
// on the token stream. That is enough to catch every construct the rules
// target, costs nothing to build, and keeps the tool dependency-free. The
// price is a small false-positive surface, which the per-line suppression
// syntax (`// vmig-lint: d3-ok -- justification`) covers.

#include "lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>

namespace vmig::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Source text with comments and string/char literals blanked to spaces
/// (newlines preserved, so offsets and line numbers survive), plus the
/// comment text per line for suppression parsing.
struct Scrubbed {
  std::string code;
  std::vector<std::string> comments;    // comment text on each 1-based line
  std::vector<bool> code_blank;         // line has no code outside comments
};

Scrubbed scrub(const std::string& in) {
  Scrubbed out;
  out.code.assign(in.size(), ' ');
  const auto line_count =
      static_cast<std::size_t>(std::count(in.begin(), in.end(), '\n')) + 2;
  out.comments.assign(line_count, std::string{});
  out.code_blank.assign(line_count, true);

  enum class State { kCode, kLine, kBlock, kStr, kChar, kRaw };
  State st = State::kCode;
  std::string raw_delim;  // for raw strings: the `)delim"` terminator
  std::size_t line = 1;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char n = i + 1 < in.size() ? in[i + 1] : '\0';
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
      if (st == State::kLine) st = State::kCode;
      continue;
    }
    switch (st) {
      case State::kCode:
        if (c == '/' && n == '/') {
          st = State::kLine;
        } else if (c == '/' && n == '*') {
          st = State::kBlock;
          ++i;
        } else if (c == '"' && i > 0 && in[i - 1] == 'R') {
          // Raw string literal: R"delim( ... )delim"
          std::size_t p = i + 1;
          std::string d;
          while (p < in.size() && in[p] != '(') d += in[p++];
          raw_delim = ")" + d + "\"";
          st = State::kRaw;
        } else if (c == '"') {
          st = State::kStr;
        } else if (c == '\'' && i > 0 && ident_char(in[i - 1]) &&
                   ident_char(n)) {
          // Digit separator (1'000'000) — part of a numeric literal.
          out.code[i] = ' ';
        } else if (c == '\'') {
          st = State::kChar;
        } else {
          out.code[i] = c;
          if (!std::isspace(static_cast<unsigned char>(c))) {
            out.code_blank[line] = false;
          }
        }
        break;
      case State::kLine:
        out.comments[line] += c;
        break;
      case State::kBlock:
        out.comments[line] += c;
        if (c == '*' && n == '/') {
          st = State::kCode;
          ++i;
        }
        break;
      case State::kStr:
        if (c == '\\') {
          ++i;
          if (i < in.size() && in[i] == '\n') ++line;
        } else if (c == '"') {
          st = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = State::kCode;
        }
        break;
      case State::kRaw:
        if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = State::kCode;
        } else if (c == '\n') {
          ++line;  // unreachable (handled above) but kept for clarity
        }
        break;
    }
  }
  return out;
}

struct Token {
  std::string text;
  std::size_t offset = 0;
};

std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> toks;
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < code.size() && ident_char(code[j])) ++j;
      toks.push_back({code.substr(i, j - i), i});
      i = j;
      continue;
    }
    if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      toks.push_back({"::", i});
      i += 2;
      continue;
    }
    toks.push_back({std::string(1, c), i});
    ++i;
  }
  return toks;
}

/// Offset -> 1-based line number.
class LineIndex {
 public:
  explicit LineIndex(const std::string& s) {
    starts_.push_back(0);
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '\n') starts_.push_back(i + 1);
    }
  }
  int line_of(std::size_t offset) const {
    const auto it =
        std::upper_bound(starts_.begin(), starts_.end(), offset);
    return static_cast<int>(it - starts_.begin());
  }

 private:
  std::vector<std::size_t> starts_;
};

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Suppression state for one file.
///
/// Two forms, both anchored on a `vmig-lint:` comment tag:
///  - per-line: `// vmig-lint: d1-ok d3-ok -- why` suppresses those rules on
///    that line; a comment-only line extends them to the next line.
///  - region:   `// vmig-lint: d1-begin -- why` ... `// vmig-lint: d1-end`
///    suppresses the rule on every line from begin through end inclusive.
///    Regions exist for sanctioned pens (e.g. the profiler's wall-clock
///    block) where per-line waivers would drown the justification.
///
/// A begin with no matching end is itself reported as a finding of the rule
/// it names — otherwise a typo'd pen would silently waive the rest of the
/// file. The region still applies through EOF so the report stays focused
/// on the one real problem (the missing end).
struct SuppressionMap {
  std::map<int, std::set<std::string>> by_line;
  std::vector<std::pair<std::string, int>> unclosed;  // rule, begin line
};

SuppressionMap suppressions(const Scrubbed& s) {
  SuppressionMap out;
  std::map<std::string, int> open;  // rule -> line of first unmatched begin
  for (std::size_t ln = 1; ln < s.comments.size(); ++ln) {
    const std::string c = lower(s.comments[ln]);
    std::set<std::string> oks;
    std::set<std::string> begins;
    std::set<std::string> ends;
    const auto tag = c.find("vmig-lint:");
    if (tag != std::string::npos) {
      for (std::size_t i = tag; i + 1 < c.size(); ++i) {
        if (c[i] != 'd' ||
            std::isdigit(static_cast<unsigned char>(c[i + 1])) == 0) {
          continue;
        }
        const std::string rule = std::string("D") + c[i + 1];
        if (c.compare(i + 2, 3, "-ok") == 0) {
          oks.insert(rule);
        } else if (c.compare(i + 2, 6, "-begin") == 0) {
          begins.insert(rule);
        } else if (c.compare(i + 2, 4, "-end") == 0) {
          ends.insert(rule);
        }
      }
    }
    // Begins take effect on their own line; ends lapse after theirs, so
    // both delimiter lines are covered by the region.
    for (const auto& r : begins) open.emplace(r, static_cast<int>(ln));
    std::set<std::string> cover = oks;
    for (const auto& [r, at] : open) cover.insert(r);
    if (!cover.empty()) {
      out.by_line[static_cast<int>(ln)].insert(cover.begin(), cover.end());
    }
    if (!oks.empty() && s.code_blank[ln]) {
      // Standalone per-line suppression comment: applies to the line below.
      out.by_line[static_cast<int>(ln) + 1].insert(oks.begin(), oks.end());
    }
    for (const auto& r : ends) open.erase(r);
  }
  for (const auto& [rule, line] : open) out.unclosed.emplace_back(rule, line);
  return out;
}

bool path_matches(const std::string& path, const std::vector<std::string>& list) {
  return std::any_of(list.begin(), list.end(), [&](const std::string& s) {
    return !s.empty() && path.find(s) != std::string::npos;
  });
}

bool is_header(const std::string& path) {
  return path.ends_with(".hpp") || path.ends_with(".h") || path.ends_with(".hh");
}

struct RuleInfo {
  const char* id;
  const char* rationale;
};

constexpr std::array<RuleInfo, 5> kRules{{
    {"D1",
     "wall-clock reads break replay determinism; derive all time from the "
     "simulator clock (sim::Simulator::now)"},
    {"D2",
     "ambient randomness makes runs irreproducible; draw from the "
     "explicitly-seeded sim::Rng instead"},
    {"D3",
     "hash-map iteration order depends on allocator/layout and leaks into "
     "exports and reports; use an ordered container, sort before iterating, "
     "or suppress with a justification"},
    {"D4",
     "environment reads smuggle configuration past the CLI and replay "
     "layers; plumb options explicitly (allow-listed config shims only)"},
    {"D5",
     "hygiene: headers need #pragma once, no using-namespace at header "
     "scope, no raw new/delete outside allow-listed files (use RAII)"},
}};

const char* rationale_of(const std::string& id) {
  for (const auto& r : kRules) {
    if (id == r.id) return r.rationale;
  }
  return "";
}

class Scanner {
 public:
  Scanner(const std::string& path, const std::string& content,
          const Options& opts)
      : path_{path},
        opts_{opts},
        scrubbed_{scrub(content)},
        toks_{tokenize(scrubbed_.code)},
        lines_{scrubbed_.code},
        suppr_{suppressions(scrubbed_)} {}

  std::vector<Finding> run() {
    scan_wall_clock();
    scan_randomness();
    scan_unordered_iteration();
    scan_getenv();
    scan_hygiene();
    // Unclosed regions bypass add(): the dangling begin covers its own line,
    // so the suppression lookup would swallow its own diagnostic.
    for (const auto& [rule, line] : suppr_.unclosed) {
      findings_.push_back(
          {path_, line, rule,
           "suppression region '" + lower(rule) +
               "-begin' is never closed (missing '" + lower(rule) + "-end')",
           rationale_of(rule)});
    }
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    return std::move(findings_);
  }

 private:
  const std::string& tok(std::size_t i) const {
    static const std::string kEnd;
    return i < toks_.size() ? toks_[i].text : kEnd;
  }

  void add(const std::string& rule, std::size_t offset, std::string message) {
    const int line = lines_.line_of(offset);
    const auto it = suppr_.by_line.find(line);
    if (it != suppr_.by_line.end() && it->second.count(rule) > 0) return;
    findings_.push_back({path_, line, rule, std::move(message),
                         rationale_of(rule)});
  }

  // D1 — no wall-clock time sources.
  void scan_wall_clock() {
    static const std::set<std::string> kAlways{
        "system_clock",  "steady_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "timespec_get",
        "localtime",     "gmtime",        "mktime",
        "utc_clock",     "file_clock"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const std::string& t = toks_[i].text;
      if (kAlways.count(t) > 0) {
        add("D1", toks_[i].offset, "wall-clock source '" + t + "'");
      } else if ((t == "time" || t == "clock") && tok(i + 1) == "(") {
        add("D1", toks_[i].offset, "wall-clock call '" + t + "()'");
      }
    }
  }

  // D2 — no ambient nondeterminism.
  void scan_randomness() {
    static const std::set<std::string> kAlways{
        "random_device", "srand", "srandom", "rand_r", "drand48"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const std::string& t = toks_[i].text;
      if (kAlways.count(t) > 0) {
        add("D2", toks_[i].offset, "nondeterministic source '" + t + "'");
      } else if ((t == "rand" || t == "random") && tok(i + 1) == "(") {
        add("D2", toks_[i].offset, "nondeterministic call '" + t + "()'");
      } else if (t == "mt19937" || t == "mt19937_64") {
        scan_mt19937_at(i);
      }
    }
  }

  /// Flag default-constructed engines: `mt19937 g;`, `mt19937{}`,
  /// `mt19937()`. Seeded forms (`mt19937 g{seed}`, `mt19937(seed)`) pass;
  /// type aliases and template arguments are ignored.
  void scan_mt19937_at(std::size_t i) {
    std::size_t j = i + 1;
    if (ident_start(tok(j).empty() ? '\0' : tok(j)[0])) ++j;  // variable name
    const std::string& a = tok(j);
    const bool unseeded =
        (a == ";" && j > i + 1) ||
        (a == "(" && tok(j + 1) == ")") || (a == "{" && tok(j + 1) == "}");
    if (unseeded) {
      add("D2", toks_[i].offset,
          "default-constructed '" + toks_[i].text +
              "' (seed it from the experiment seed)");
    }
  }

  // D3 — no iteration over unordered containers.
  void scan_unordered_iteration() {
    const auto& names = opts_.unordered_names;
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      // Range-for: `for (` <decl> `:` <expr> `)` — flag when the last
      // identifier of <expr> names an unordered container.
      if (toks_[i].text == "for" && tok(i + 1) == "(") {
        std::size_t j = i + 2;
        int depth = 1;
        bool range_for = false;
        for (; j < toks_.size() && depth > 0; ++j) {
          const std::string& t = toks_[j].text;
          if (t == "(") ++depth;
          else if (t == ")") --depth;
          else if (t == ";" && depth == 1) break;  // classic for
          else if (t == ":" && depth == 1) {
            range_for = true;
            break;
          }
        }
        if (!range_for) continue;
        std::size_t last_ident = 0;
        bool have = false;
        for (std::size_t k = j + 1; k < toks_.size(); ++k) {
          const std::string& t = toks_[k].text;
          if (t == "(") ++depth;
          if (t == ")") {
            if (depth == 1) break;
            --depth;
          }
          if (ident_start(t[0])) {
            last_ident = k;
            have = true;
          }
        }
        if (have && names.count(toks_[last_ident].text) > 0) {
          add("D3", toks_[last_ident].offset,
              "range-for over unordered container '" +
                  toks_[last_ident].text + "'");
        }
      }
      // Iterator loop: `name.begin()` / `name.cbegin()` on an unordered name.
      if (names.count(toks_[i].text) > 0 &&
          (tok(i + 1) == "." || tok(i + 1) == "->") &&
          (tok(i + 2) == "begin" || tok(i + 2) == "cbegin")) {
        add("D3", toks_[i].offset,
            "iterator walk over unordered container '" + toks_[i].text + "'");
      }
    }
  }

  // D4 — no getenv outside the config-shim allowlist.
  void scan_getenv() {
    if (path_matches(path_, opts_.getenv_allowlist)) return;
    for (const auto& t : toks_) {
      if (t.text == "getenv" || t.text == "secure_getenv") {
        add("D4", t.offset, "environment read '" + t.text + "'");
      }
    }
  }

  // D5 — hygiene.
  void scan_hygiene() {
    if (is_header(path_)) {
      bool pragma_once = false;
      for (std::size_t i = 0; i + 2 < toks_.size(); ++i) {
        if (toks_[i].text == "#" && tok(i + 1) == "pragma" &&
            tok(i + 2) == "once") {
          pragma_once = true;
          break;
        }
      }
      if (!pragma_once) add("D5", 0, "header missing '#pragma once'");
      for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
        if (toks_[i].text == "using" && tok(i + 1) == "namespace") {
          add("D5", toks_[i].offset, "'using namespace' in a header");
        }
      }
    }
    if (!path_matches(path_, opts_.new_delete_allowlist)) {
      for (std::size_t i = 0; i < toks_.size(); ++i) {
        const std::string& t = toks_[i].text;
        if (t == "new") {
          add("D5", toks_[i].offset, "raw 'new' (prefer make_unique/RAII)");
        } else if (t == "delete" && (i == 0 || toks_[i - 1].text != "=")) {
          // `= delete;` declares a deleted function and is fine.
          add("D5", toks_[i].offset, "raw 'delete' (prefer RAII ownership)");
        }
      }
    }
  }

  std::string path_;
  const Options& opts_;
  Scrubbed scrubbed_;
  std::vector<Token> toks_;
  LineIndex lines_;
  SuppressionMap suppr_;
  std::vector<Finding> findings_;
};

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kIds = [] {
    std::vector<std::string> v;
    for (const auto& r : kRules) v.emplace_back(r.id);
    return v;
  }();
  return kIds;
}

std::string rule_rationale(const std::string& rule) {
  return rationale_of(rule);
}

std::set<std::string> collect_unordered_names(const std::string& content) {
  // Declarations look like `std::unordered_map<K, V> name...;` — find the
  // container keyword, skip the template argument list by angle-bracket
  // depth, and take the next identifier. Misses exotic spellings (aliases,
  // decltype) by design; those need an explicit suppression at the loop.
  std::set<std::string> names;
  const Scrubbed s = scrub(content);
  const auto toks = tokenize(s.code);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text != "unordered_map" && toks[i].text != "unordered_set" &&
        toks[i].text != "unordered_multimap" &&
        toks[i].text != "unordered_multiset") {
      continue;
    }
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "<") ++depth;
      else if (toks[j].text == ">") {
        if (--depth == 0) {
          ++j;
          break;
        }
      } else if (toks[j].text == ";") {
        break;  // malformed / not a declaration
      }
    }
    // Skip ref/pointer/cv decorations so parameter names are caught too.
    while (j < toks.size() && (toks[j].text == "&" || toks[j].text == "*" ||
                               toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && !toks[j].text.empty() &&
        ident_start(toks[j].text[0])) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

std::vector<Finding> lint_content(const std::string& path,
                                  const std::string& content,
                                  const Options& opts) {
  return Scanner{path, content, opts}.run();
}

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ":" + f.rule + ": " +
         f.message + " (" + f.rationale + ")";
}

}  // namespace vmig::lint
