#pragma once

#include <set>
#include <string>
#include <vector>

namespace vmig::lint {

/// One rule violation at a specific source location.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;       ///< "D1".."D5", "C1".."C3", "H1".."H2", "L1".."L2"
  std::string message;    ///< what was found, with the offending token
  std::string rationale;  ///< why the rule exists (printed with the finding)

  /// Mechanical fix `vmig_lint --fix` can apply, if any.
  enum class Fix {
    kNone,
    kCloseRegion,       ///< append the missing `<fix_arg>-end` line at EOF
    kAddJustification,  ///< append a `-- FIXME: justify` stub to the comment
  };
  Fix fix = Fix::kNone;
  std::string fix_arg;  ///< kCloseRegion: lowercase region name ("d1", "hot")
};

/// Tunables for one lint pass.
struct Options {
  /// Identifiers declared anywhere in the scanned tree as
  /// std::unordered_map / std::unordered_set variables or members (D3).
  std::set<std::string> unordered_names;
  /// Path substrings allowed to call getenv — the config shim(s) (D4).
  std::vector<std::string> getenv_allowlist;
  /// Path substrings allowed raw new/delete (D5).
  std::vector<std::string> new_delete_allowlist;
  /// RAII type names (last component, unqualified) that must never be live
  /// across a co_await (C1): profiler probes, lock guards, span handles.
  std::set<std::string> raii_pen_types{"ProfScope",   "WallStopwatch",
                                       "lock_guard",  "unique_lock",
                                       "scoped_lock", "shared_lock"};
  /// Rule families to run, by leading letter ('D','C','H'); empty = all.
  /// (L-rules are graph-level: see check_layering below.)
  std::set<char> families;
  /// Flag `-ok`/`-begin` suppressions that carry no `-- why` justification.
  bool require_justification = true;
};

/// Rule ids in report order.
const std::vector<std::string>& rule_ids();

/// One-line rationale for a rule id; empty for unknown ids.
std::string rule_rationale(const std::string& rule);

/// Pass 1 over one file: identifiers declared with an unordered container
/// type, e.g. `std::unordered_map<K, V> pending_;` yields "pending_".
std::set<std::string> collect_unordered_names(const std::string& content);

/// Pass 2 over one file: all findings, sorted by (line, rule). Findings on
/// lines carrying a `// vmig-lint: <rule>-ok` comment (or directly below a
/// comment-only line carrying one) are suppressed, as are findings inside a
/// `// vmig-lint: <rule>-begin` ... `// vmig-lint: <rule>-end` region
/// (delimiter lines included). A begin with no matching end is itself
/// reported as a finding of the rule it names. `hot-begin`/`hot-end`
/// regions are the opposite of suppressions: they arm the H-rules.
std::vector<Finding> lint_content(const std::string& path,
                                  const std::string& content,
                                  const Options& opts);

// --- L-rules: include-graph layering (graph-level, multi-file) -----------

/// One `#include "..."` edge (quoted includes only; angle includes are
/// system headers and never participate in layering).
struct IncludeEdge {
  int line = 0;
  std::string target;  ///< path as written between the quotes
  bool l1_ok = false;  ///< include line carries an `l1-ok` waiver comment
  bool l2_ok = false;  ///< include line carries an `l2-ok` waiver comment
};

/// Quoted-include edges of one file, in line order.
std::vector<IncludeEdge> collect_includes(const std::string& content);

/// Strip the path down to its repo-layer form: everything up to and
/// including the last `src/` component is dropped; `tools/`, `tests/`,
/// `bench/`, `examples/` roots are kept. "/root/repo/src/core/tpm.cpp"
/// -> "core/tpm.cpp"; ".../tools/lint/lint.cpp" -> "tools/lint/lint.cpp".
std::string normalize_include_path(const std::string& path);

/// The committed layer DAG (tools/lint/layers.txt). Layers are listed
/// bottom-up; a file may include same-layer and lower-layer files only.
struct Layers {
  struct Layer {
    std::string name;
    std::vector<std::string> prefixes;  ///< longest-prefix match wins
  };
  std::vector<Layer> layers;
  std::string parse_error;  ///< non-empty if the file was malformed

  /// Layer index of a normalized path (longest matching prefix); -1 if no
  /// prefix covers it.
  int layer_of(const std::string& norm) const;
  /// Layer name for an index; "?" when out of range.
  std::string name_of(int layer) const;

  static Layers parse(const std::string& text);
};

/// One file's include edges, keyed both ways: `path` as reported to the
/// user, `norm` as matched against Layers prefixes and other files.
struct FileIncludes {
  std::string path;
  std::string norm;
  std::vector<IncludeEdge> includes;
};

/// L1 (back-edge: include points to a strictly higher layer, or file not
/// covered by any layer prefix) and L2 (file-level include cycle) over the
/// whole scanned set. Include targets are resolved against the set by exact
/// or suffix match; unresolved targets (system or generated headers) are
/// skipped.
std::vector<Finding> check_layering(const std::vector<FileIncludes>& files,
                                    const Layers& layers);

/// Deterministic DOT graph of the include structure, one node per layer
/// prefix, clustered by layer (bottom-up). Snapshot lives in docs/.
std::string include_graph_dot(const std::vector<FileIncludes>& files,
                              const Layers& layers);

// --- output & fixes ------------------------------------------------------

/// Apply the mechanical fixes (Finding::Fix) that target `path` to its
/// content; returns the rewritten text. `applied`, if non-null, receives
/// the number of fixes applied.
std::string apply_fixes(const std::string& content,
                        const std::vector<Finding>& findings, int* applied);

/// Machine-readable single-line form: `file:line:rule: message (rationale)`.
std::string format_finding(const Finding& f);

/// GitHub Actions workflow-annotation form:
/// `::error file=...,line=...::rule: message`.
std::string format_finding_github(const Finding& f);

}  // namespace vmig::lint
