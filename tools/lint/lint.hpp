#pragma once

#include <set>
#include <string>
#include <vector>

namespace vmig::lint {

/// One rule violation at a specific source location.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;       ///< "D1".."D5"
  std::string message;    ///< what was found, with the offending token
  std::string rationale;  ///< why the rule exists (printed with the finding)
};

/// Tunables for one lint pass.
struct Options {
  /// Identifiers declared anywhere in the scanned tree as
  /// std::unordered_map / std::unordered_set variables or members (D3).
  std::set<std::string> unordered_names;
  /// Path substrings allowed to call getenv — the config shim(s) (D4).
  std::vector<std::string> getenv_allowlist;
  /// Path substrings allowed raw new/delete (D5).
  std::vector<std::string> new_delete_allowlist;
};

/// Rule ids in report order.
const std::vector<std::string>& rule_ids();

/// One-line rationale for a rule id ("D1".."D5"); empty for unknown ids.
std::string rule_rationale(const std::string& rule);

/// Pass 1 over one file: identifiers declared with an unordered container
/// type, e.g. `std::unordered_map<K, V> pending_;` yields "pending_".
std::set<std::string> collect_unordered_names(const std::string& content);

/// Pass 2 over one file: all findings, sorted by (line, rule). Findings on
/// lines carrying a `// vmig-lint: <rule>-ok` comment (or directly below a
/// comment-only line carrying one) are suppressed, as are findings inside a
/// `// vmig-lint: <rule>-begin` ... `// vmig-lint: <rule>-end` region
/// (delimiter lines included). A begin with no matching end is itself
/// reported as a finding of the rule it names.
std::vector<Finding> lint_content(const std::string& path,
                                  const std::string& content,
                                  const Options& opts);

/// Machine-readable single-line form: `file:line:rule: message (rationale)`.
std::string format_finding(const Finding& f);

}  // namespace vmig::lint
