// vmig_lint — determinism, coroutine-safety, hot-path allocation, and
// include-layering static analysis for the vmig tree.
//
//   vmig_lint [options] PATH...
//
// Walks every C++ source file under the given paths and enforces the rules
// documented in docs/LINT.md. Passes: (1) collect every identifier declared
// as an unordered container anywhere in the tree (so a map declared in a
// header is caught when a .cpp iterates it); (2) per-file token/scope scan
// (D/C/H rules); (3) optional include-graph layering check (L rules) when
// --layers is given, which can also snapshot the graph as DOT.
//
// Exit status: 0 clean, 1 violations found, 2 usage or I/O error.

#include <algorithm>
#include <cctype>
#include <chrono>  // vmig-lint: d1-ok -- tool wall-time reporting, no sim state
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using vmig::lint::FileIncludes;
using vmig::lint::Finding;
using vmig::lint::Layers;
using vmig::lint::Options;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options] PATH...\n"
      "  --exclude S       skip files whose path contains S (repeatable)\n"
      "  --allow-getenv S  allow getenv in files whose path contains S\n"
      "  --allow-new S     allow raw new/delete in files matching S\n"
      "  --rules FAMS      run only these rule families, e.g. D, CH, DCHL\n"
      "  --layers FILE     layer DAG for the L-rules (tools/lint/layers.txt)\n"
      "  --dot FILE        write the include graph as DOT (needs --layers)\n"
      "  --format FMT      plain (default) or github (workflow annotations)\n"
      "  --fix             apply mechanical fixes (close regions, justify\n"
      "                    stubs) in place, then report what remains\n"
      "  --list-rules      print the rule set and exit\n"
      "  -h, --help        this message\n"
      "suppress a finding in source with: // vmig-lint: <rule>-ok -- why\n"
      "suppress a sanctioned region with: // vmig-lint: <rule>-begin -- why\n"
      "                              ...  // vmig-lint: <rule>-end\n"
      "arm the H-rules over a hot loop:   // vmig-lint: hot-begin -- name\n"
      "                              ...  // vmig-lint: hot-end\n",
      argv0);
}

void list_rules() {
  for (const auto& id : vmig::lint::rule_ids()) {
    std::printf("%s: %s\n", id.c_str(), vmig::lint::rule_rationale(id).c_str());
  }
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh" || ext == ".ipp";
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in{p, std::ios::binary};
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // vmig-lint: d1-ok -- lint's own elapsed-time report, not simulated state
  const auto t0 = std::chrono::steady_clock::now();
  Options opts;
  std::vector<std::string> excludes;
  std::vector<std::string> roots;
  std::string layers_path;
  std::string dot_path;
  std::string format = "plain";
  std::string rules_arg;
  bool fix = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--exclude") {
      excludes.emplace_back(need("--exclude"));
    } else if (a == "--allow-getenv") {
      opts.getenv_allowlist.emplace_back(need("--allow-getenv"));
    } else if (a == "--allow-new") {
      opts.new_delete_allowlist.emplace_back(need("--allow-new"));
    } else if (a == "--rules") {
      rules_arg = need("--rules");
    } else if (a == "--layers") {
      layers_path = need("--layers");
    } else if (a == "--dot") {
      dot_path = need("--dot");
    } else if (a == "--format") {
      format = need("--format");
      if (format != "plain" && format != "github") {
        std::fprintf(stderr, "error: --format must be plain or github\n");
        return 2;
      }
    } else if (a == "--fix") {
      fix = true;
    } else if (a == "--list-rules") {
      list_rules();
      return 0;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", a.c_str());
      usage(argv[0]);
      return 2;
    } else {
      roots.push_back(a);
    }
  }
  if (roots.empty()) {
    usage(argv[0]);
    return 2;
  }
  bool run_layering = !layers_path.empty();
  for (const char c : rules_arg) {
    if (c == ',' || c == ' ') continue;
    const char f = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (f != 'D' && f != 'C' && f != 'H' && f != 'L') {
      std::fprintf(stderr, "error: unknown rule family '%c'\n", c);
      return 2;
    }
    opts.families.insert(f);
  }
  if (!opts.families.empty()) {
    if (opts.families.count('L') > 0 && layers_path.empty()) {
      std::fprintf(stderr, "error: --rules L needs --layers FILE\n");
      return 2;
    }
    run_layering = run_layering && opts.families.count('L') > 0;
  }
  if (!dot_path.empty() && layers_path.empty()) {
    std::fprintf(stderr, "error: --dot needs --layers FILE\n");
    return 2;
  }

  Layers layers;
  if (!layers_path.empty()) {
    std::string text;
    if (!read_file(layers_path, text)) {
      std::fprintf(stderr, "error: cannot read '%s'\n", layers_path.c_str());
      return 2;
    }
    layers = Layers::parse(text);
    if (!layers.parse_error.empty()) {
      std::fprintf(stderr, "error: %s: %s\n", layers_path.c_str(),
                   layers.parse_error.c_str());
      return 2;
    }
  }

  // Gather the file list, sorted so reports are stable across filesystems.
  std::vector<std::string> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      if (lintable(root)) files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      std::fprintf(stderr, "error: no such path '%s'\n", root.c_str());
      return 2;
    }
    for (fs::recursive_directory_iterator it{root, ec}, end; it != end;
         it.increment(ec)) {
      if (ec) {
        std::fprintf(stderr, "error: walking '%s': %s\n", root.c_str(),
                     ec.message().c_str());
        return 2;
      }
      if (it->is_regular_file() && lintable(it->path())) {
        files.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  std::erase_if(files, [&](const std::string& f) {
    return std::any_of(excludes.begin(), excludes.end(),
                       [&](const std::string& s) {
                         return f.find(s) != std::string::npos;
                       });
  });

  // Pass 1: unordered-container names, tree-wide.
  std::vector<std::pair<std::string, std::string>> contents;
  contents.reserve(files.size());
  for (const auto& f : files) {
    std::string text;
    if (!read_file(f, text)) {
      std::fprintf(stderr, "error: cannot read '%s'\n", f.c_str());
      return 2;
    }
    const auto names = vmig::lint::collect_unordered_names(text);
    opts.unordered_names.insert(names.begin(), names.end());
    contents.emplace_back(f, std::move(text));
  }

  // Pass 2 (+3): lint each file, then the include graph.
  const auto collect_findings = [&] {
    std::vector<Finding> all;
    for (const auto& [file, text] : contents) {
      for (Finding& f : vmig::lint::lint_content(file, text, opts)) {
        all.push_back(std::move(f));
      }
    }
    if (run_layering) {
      std::vector<FileIncludes> incs;
      incs.reserve(contents.size());
      for (const auto& [file, text] : contents) {
        incs.push_back({file, vmig::lint::normalize_include_path(file),
                        vmig::lint::collect_includes(text)});
      }
      for (Finding& f : vmig::lint::check_layering(incs, layers)) {
        all.push_back(std::move(f));
      }
    }
    return all;
  };

  std::vector<Finding> findings = collect_findings();
  if (fix) {
    int fixed_total = 0;
    for (auto& [file, text] : contents) {
      std::vector<Finding> mine;
      for (const Finding& f : findings) {
        if (f.file == file && f.fix != Finding::Fix::kNone) mine.push_back(f);
      }
      if (mine.empty()) continue;
      int applied = 0;
      const std::string updated = vmig::lint::apply_fixes(text, mine, &applied);
      if (applied == 0 || updated == text) continue;
      std::ofstream out{file, std::ios::binary | std::ios::trunc};
      if (!out) {
        std::fprintf(stderr, "error: cannot write '%s'\n", file.c_str());
        return 2;
      }
      out << updated;
      text = updated;
      fixed_total += applied;
      std::fprintf(stderr, "vmig_lint: fixed %d issue(s) in %s\n", applied,
                   file.c_str());
    }
    if (fixed_total > 0) findings = collect_findings();
  }

  for (const Finding& f : findings) {
    if (format == "github") {
      std::printf("%s\n", vmig::lint::format_finding_github(f).c_str());
    } else {
      std::printf("%s\n", vmig::lint::format_finding(f).c_str());
    }
  }

  if (!dot_path.empty()) {
    std::vector<FileIncludes> incs;
    incs.reserve(contents.size());
    for (const auto& [file, text] : contents) {
      incs.push_back({file, vmig::lint::normalize_include_path(file),
                      vmig::lint::collect_includes(text)});
    }
    std::ofstream out{dot_path, std::ios::binary | std::ios::trunc};
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", dot_path.c_str());
      return 2;
    }
    out << vmig::lint::include_graph_dot(incs, layers);
  }

  const auto elapsed =  // vmig-lint: d1-ok -- lint's own elapsed-time report
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)  // vmig-lint: d1-ok -- ditto
          .count();
  std::string fams = rules_arg.empty() ? std::string{"DCHL"} : rules_arg;
  for (char& c : fams) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  std::fprintf(stderr,
               "vmig_lint: [%s] %zu violation(s) in %zu file(s), %.1f ms\n",
               fams.c_str(), findings.size(), contents.size(),
               static_cast<double>(elapsed) / 1000.0);
  return findings.empty() ? 0 : 1;
}
