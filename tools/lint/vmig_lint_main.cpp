// vmig_lint — determinism & hygiene static analysis for the vmig tree.
//
//   vmig_lint [options] PATH...
//
// Walks every C++ source file under the given paths and enforces the
// determinism rules documented in docs/DETERMINISM.md. Two passes: the
// first collects every identifier declared as an unordered container
// anywhere in the tree (so a map declared in a header is caught when a
// .cpp iterates it); the second scans each file for violations.
//
// Exit status: 0 clean, 1 violations found, 2 usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using vmig::lint::Finding;
using vmig::lint::Options;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options] PATH...\n"
      "  --exclude S       skip files whose path contains S (repeatable)\n"
      "  --allow-getenv S  allow getenv in files whose path contains S\n"
      "  --allow-new S     allow raw new/delete in files matching S\n"
      "  --list-rules      print the rule set and exit\n"
      "  -h, --help        this message\n"
      "suppress a finding in source with: // vmig-lint: <rule>-ok -- why\n"
      "suppress a sanctioned region with: // vmig-lint: <rule>-begin -- why\n"
      "                              ...  // vmig-lint: <rule>-end\n",
      argv0);
}

void list_rules() {
  for (const auto& id : vmig::lint::rule_ids()) {
    std::printf("%s: %s\n", id.c_str(), vmig::lint::rule_rationale(id).c_str());
  }
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh" || ext == ".ipp";
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in{p, std::ios::binary};
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::vector<std::string> excludes;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--exclude") {
      excludes.emplace_back(need("--exclude"));
    } else if (a == "--allow-getenv") {
      opts.getenv_allowlist.emplace_back(need("--allow-getenv"));
    } else if (a == "--allow-new") {
      opts.new_delete_allowlist.emplace_back(need("--allow-new"));
    } else if (a == "--list-rules") {
      list_rules();
      return 0;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", a.c_str());
      usage(argv[0]);
      return 2;
    } else {
      roots.push_back(a);
    }
  }
  if (roots.empty()) {
    usage(argv[0]);
    return 2;
  }

  // Gather the file list, sorted so reports are stable across filesystems.
  std::vector<std::string> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      if (lintable(root)) files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      std::fprintf(stderr, "error: no such path '%s'\n", root.c_str());
      return 2;
    }
    for (fs::recursive_directory_iterator it{root, ec}, end; it != end;
         it.increment(ec)) {
      if (ec) {
        std::fprintf(stderr, "error: walking '%s': %s\n", root.c_str(),
                     ec.message().c_str());
        return 2;
      }
      if (it->is_regular_file() && lintable(it->path())) {
        files.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  std::erase_if(files, [&](const std::string& f) {
    return std::any_of(excludes.begin(), excludes.end(),
                       [&](const std::string& s) {
                         return f.find(s) != std::string::npos;
                       });
  });

  // Pass 1: unordered-container names, tree-wide.
  std::vector<std::pair<std::string, std::string>> contents;
  contents.reserve(files.size());
  for (const auto& f : files) {
    std::string text;
    if (!read_file(f, text)) {
      std::fprintf(stderr, "error: cannot read '%s'\n", f.c_str());
      return 2;
    }
    const auto names = vmig::lint::collect_unordered_names(text);
    opts.unordered_names.insert(names.begin(), names.end());
    contents.emplace_back(f, std::move(text));
  }

  // Pass 2: lint each file.
  std::size_t violations = 0;
  for (const auto& [file, text] : contents) {
    for (const Finding& f : vmig::lint::lint_content(file, text, opts)) {
      std::printf("%s\n", vmig::lint::format_finding(f).c_str());
      ++violations;
    }
  }
  std::fprintf(stderr, "vmig_lint: %zu violation(s) in %zu file(s)\n",
               violations, contents.size());
  return violations == 0 ? 0 : 1;
}
