#include "top.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace vmig::top {

namespace {

/// One parsed CSV row: "<t>,<metric>,<value>".
struct Row {
  std::string t;
  std::string metric;
  std::string value;
};

/// One snapshot = the run of rows sharing a timestamp token. The rollup
/// writes snapshots in time order with every row of a snapshot contiguous,
/// so grouping by the raw token (no float parsing) preserves both order and
/// the exact seconds text for the header line.
struct Snapshot {
  std::string t;
  std::vector<Row> rows;
};

bool split_row(const std::string& line, Row& r) {
  const std::size_t c1 = line.find(',');
  if (c1 == std::string::npos) return false;
  const std::size_t c2 = line.find(',', c1 + 1);
  if (c2 == std::string::npos) return false;
  r.t = line.substr(0, c1);
  r.metric = line.substr(c1 + 1, c2 - c1 - 1);
  r.value = line.substr(c2 + 1);
  return !r.t.empty() && !r.metric.empty() && !r.value.empty();
}

/// "<prefix><digits>.<field>" -> (id, field); npos-safe.
bool match_indexed(const std::string& metric, const char* prefix,
                   std::string& id, std::string& field) {
  const std::size_t plen = std::char_traits<char>::length(prefix);
  if (metric.compare(0, plen, prefix) != 0) return false;
  std::size_t i = plen;
  while (i < metric.size() && metric[i] >= '0' && metric[i] <= '9') ++i;
  if (i == plen || i >= metric.size() || metric[i] != '.') return false;
  id = metric.substr(plen, i - plen);
  field = metric.substr(i + 1);
  return true;
}

/// Ordered (id -> field -> value) accumulator for rack/shard/hot tables:
/// ids render in first-appearance order, which the rollup already emits
/// ascending, so no resorting (and no numeric parsing) is needed.
class IndexedTable {
 public:
  void add(const std::string& id, const std::string& field,
           const std::string& value) {
    for (auto& [gid, fields] : groups_) {
      if (gid == id) {
        fields.emplace_back(field, value);
        return;
      }
    }
    groups_.emplace_back(id,
                         std::vector<std::pair<std::string, std::string>>{
                             {field, value}});
  }
  bool empty() const { return groups_.empty(); }
  const auto& groups() const { return groups_; }
  const std::string* find(const std::string& id, const std::string& field) const {
    for (const auto& [gid, fields] : groups_) {
      if (gid != id) continue;
      for (const auto& [f, v] : fields) {
        if (f == field) return &v;
      }
    }
    return nullptr;
  }

 private:
  std::vector<
      std::pair<std::string, std::vector<std::pair<std::string, std::string>>>>
      groups_;
};

void pad(std::ostream& out, const std::string& s, std::size_t width) {
  out << s;
  for (std::size_t i = s.size(); i < width; ++i) out << ' ';
}

void render_hot(std::ostream& out, const char* title, const char* value_field,
                const IndexedTable& t) {
  if (t.empty()) return;
  out << "  " << title << ":";
  for (const auto& [id, fields] : t.groups()) {
    const std::string* host = t.find(id, "host");
    const std::string* v = t.find(id, value_field);
    if (host == nullptr || v == nullptr) continue;
    out << " host" << *host << "=" << *v;
  }
  out << "\n";
}

void render(std::ostream& out, const Snapshot& s) {
  // Bucket the snapshot's rows. Unknown metrics are carried through in a
  // trailing "other" section rather than dropped: a newer rollup must stay
  // viewable with an older vmig_top.
  std::vector<std::pair<std::string, std::string>> fleet;
  std::vector<std::pair<std::string, std::string>> sched;
  std::vector<std::pair<std::string, std::string>> other;
  IndexedTable racks;
  IndexedTable shards;
  IndexedTable hot_dirty;
  IndexedTable hot_bytes;
  IndexedTable hot_slo;
  std::string id;
  std::string field;
  for (const Row& r : s.rows) {
    if (r.metric.rfind("fleet.", 0) == 0) {
      fleet.emplace_back(r.metric.substr(6), r.value);
    } else if (r.metric.rfind("sched.", 0) == 0) {
      sched.emplace_back(r.metric.substr(6), r.value);
    } else if (match_indexed(r.metric, "rack", id, field)) {
      racks.add(id, field, r.value);
    } else if (match_indexed(r.metric, "shard", id, field)) {
      shards.add(id, field, r.value);
    } else if (match_indexed(r.metric, "hot_dirty", id, field)) {
      hot_dirty.add(id, field, r.value);
    } else if (match_indexed(r.metric, "hot_bytes", id, field)) {
      hot_bytes.add(id, field, r.value);
    } else if (match_indexed(r.metric, "hot_slo", id, field)) {
      hot_slo.add(id, field, r.value);
    } else {
      other.emplace_back(r.metric, r.value);
    }
  }

  out << "== fleet @ " << s.t << "s ==\n";
  if (!fleet.empty()) {
    out << "  fleet:";
    for (const auto& [k, v] : fleet) out << " " << k << "=" << v;
    out << "\n";
  }
  if (!sched.empty()) {
    out << "  sched:";
    for (const auto& [k, v] : sched) out << " " << k << "=" << v;
    out << "\n";
  }
  if (!racks.empty()) {
    static const char* const kCols[] = {
        "bytes_out",      "bytes_in",    "dirty_blocks", "jobs_completed",
        "jobs_failed",    "slo_miss",    "in_flight"};
    out << "  racks (" << racks.groups().size() << " active):\n";
    out << "    ";
    pad(out, "rack", 8);
    for (const char* c : kCols) pad(out, c, 16);
    out << "\n";
    for (const auto& [rid, fields] : racks.groups()) {
      (void)fields;
      out << "    ";
      pad(out, rid, 8);
      for (const char* c : kCols) {
        const std::string* v = racks.find(rid, c);
        pad(out, v != nullptr ? *v : std::string{"-"}, 16);
      }
      out << "\n";
    }
  }
  render_hot(out, "hot dirty_blocks", "blocks", hot_dirty);
  render_hot(out, "hot bytes", "bytes", hot_bytes);
  render_hot(out, "hot slo_miss", "miss", hot_slo);
  if (!shards.empty()) {
    out << "  shards:";
    for (const auto& [sid, fields] : shards.groups()) {
      (void)fields;
      const std::string* live = shards.find(sid, "live");
      const std::string* queued = shards.find(sid, "queued");
      const std::string* lag = shards.find(sid, "head_lag_ns");
      out << " s" << sid << "[live=" << (live != nullptr ? *live : "-")
          << " q=" << (queued != nullptr ? *queued : "-")
          << " lag_ns=" << (lag != nullptr ? *lag : "-") << "]";
    }
    out << "\n";
  }
  if (!other.empty()) {
    out << "  other:";
    for (const auto& [k, v] : other) out << " " << k << "=" << v;
    out << "\n";
  }
}

}  // namespace

int run_stream(std::istream& in, const Options& opt, std::ostream& out,
               std::ostream& err) {
  std::string line;
  if (!std::getline(in, line)) {
    err << "vmig_top: empty input\n";
    return 2;
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != "t_seconds,metric,value") {
    err << "vmig_top: not a rollup CSV (bad header '" << line << "')\n";
    return 2;
  }

  std::vector<Snapshot> snaps;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    Row r;
    if (!split_row(line, r)) {
      err << "vmig_top: malformed row at line " << lineno << "\n";
      return 2;
    }
    // A new snapshot starts on a timestamp change — or on seeing the current
    // group's first metric again, since two consecutive snapshots can share
    // a timestamp (the sampler's final tick and the post-drain terminal
    // sample land on the same instant).
    if (snaps.empty() || snaps.back().t != r.t ||
        (!snaps.back().rows.empty() &&
         snaps.back().rows.front().metric == r.metric)) {
      snaps.push_back(Snapshot{r.t, {}});
    }
    snaps.back().rows.push_back(std::move(r));
  }

  if (snaps.empty()) {
    out << "(no snapshots)\n";
    return 0;
  }
  if (opt.last_only) {
    render(out, snaps.back());
  } else {
    for (const Snapshot& s : snaps) render(out, s);
  }
  out << "(" << snaps.size() << " snapshot" << (snaps.size() == 1 ? "" : "s")
      << ")\n";
  return 0;
}

int run(const Options& opt, std::ostream& out, std::ostream& err) {
  if (opt.input == "-") {
    return run_stream(std::cin, opt, out, err);
  }
  std::ifstream in{opt.input};
  if (!in) {
    err << "vmig_top: cannot open '" << opt.input << "'\n";
    return 2;
  }
  return run_stream(in, opt, out, err);
}

}  // namespace vmig::top
