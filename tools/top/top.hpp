#pragma once

#include <iosfwd>
#include <string>

namespace vmig::top {

/// vmig_top: live fleet view over a rollup CSV (`vmig_sim --fleet-metrics`,
/// obs::Rollup::write_csv). Renders one fleet snapshot table per sample —
/// totals, active racks, top-K hot hosts, per-shard scheduler occupancy —
/// from a file or a stream ("-" = stdin), so it works both post-hoc over an
/// export and live over a pipe. The output is a pure function of the input
/// bytes: rendering the same CSV twice is byte-identical (pinned by
/// tests/fleet_test.cpp).
struct Options {
  /// Rollup CSV path, or "-" to read stdin.
  std::string input = "-";
  /// Render only the final snapshot (the terminal fleet state).
  bool last_only = false;
};

/// Render `opt.input` to `out` (diagnostics to `err`). Returns the process
/// exit status: 0 = rendered at least the header cleanly, 2 = unreadable or
/// malformed input.
int run(const Options& opt, std::ostream& out, std::ostream& err);

/// In-process variant over an already-open stream (the CLI wraps this).
int run_stream(std::istream& in, const Options& opt, std::ostream& out,
               std::ostream& err);

}  // namespace vmig::top
