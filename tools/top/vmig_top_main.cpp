// vmig_top — live fleet view over a rollup CSV.
//
//   vmig_sim --cluster ... --fleet-metrics fleet.csv
//   vmig_top fleet.csv            # every snapshot, in time order
//   vmig_top --last fleet.csv     # terminal fleet state only
//   ... --fleet-metrics /dev/stdout | vmig_top -   # live from a pipe
//
// Renders one bounded table per rollup snapshot: fleet job/byte totals,
// active racks, top-K hot hosts, and per-shard scheduler occupancy. The
// output is a pure function of the input bytes (docs/OBSERVABILITY.md).
// Exit status: 0 = rendered, 2 = bad input.

#include <cstdio>
#include <iostream>
#include <string>

#include "top.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [FLEET.csv | -] [options]\n"
      "  --last           render only the final snapshot\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  vmig::top::Options opt;
  bool have_input = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--last") {
      opt.last_only = true;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (a != "-" && !a.empty() && a[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", a.c_str());
      usage(argv[0]);
      return 2;
    } else if (!have_input) {
      opt.input = a;
      have_input = true;
    } else {
      std::fprintf(stderr, "error: more than one input path\n");
      usage(argv[0]);
      return 2;
    }
  }
  return vmig::top::run(opt, std::cout, std::cerr);
}
