// vmig_sim — command-line front end for the migration simulator.
//
// Runs one migration experiment on the calibrated two-host testbed and
// prints the report. Examples:
//
//   vmig_sim                                 # idle guest, paper testbed
//   vmig_sim --workload web --disk-mib 8192
//   vmig_sim --workload bonnie --rate-limit 30
//   vmig_sim --scheme delta --workload web   # run a baseline instead
//   vmig_sim --roundtrip --dwell 600         # TPM out + incremental back
//   vmig_sim --sparse --fullness 0.25        # §VII free-block map
//   vmig_sim --verbose                       # narrate migration phases
//   vmig_sim --trace out.json                # Chrome/Perfetto trace export
//   vmig_sim --metrics out.csv               # sampled metrics time series

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <fstream>
#include <string>

#include "baselines/delta_forward.hpp"
#include "baselines/freeze_and_copy.hpp"
#include "baselines/on_demand.hpp"
#include "baselines/shared_storage.hpp"
#include "core/disruption.hpp"
#include "core/report_io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "scenario/testbed.hpp"
#include "simcore/log.hpp"
#include "workloads/diabolical.hpp"
#include "workloads/kernel_build.hpp"
#include "workloads/memory_hog.hpp"
#include "workloads/trace_replay.hpp"
#include "workloads/streaming.hpp"
#include "workloads/web_server.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

struct Options {
  std::string workload = "idle";  // idle|web|stream|bonnie|build|memhog|trace
  std::string trace_file;
  std::string scheme = "tpm";     // tpm|freeze|shared|ondemand|delta
  std::uint64_t disk_mib = 39070;
  std::uint64_t mem_mib = 512;
  double fullness = 1.0;
  double rate_limit = 0.0;
  double warmup_s = 60.0;
  double post_s = 30.0;
  double dwell_s = 600.0;
  std::uint64_t seed = 42;
  bool roundtrip = false;
  bool sparse = false;
  bool flat_bitmap = false;
  bool verbose = false;
  bool json = false;
  bool progress = false;
  bool sim_trace = false;  // --sim-trace: narrate scheduler events to stderr
  std::string chrome_trace;  // --trace: Chrome trace-event JSON output
  std::string metrics_csv;   // --metrics: sampled metrics, long-format CSV
  std::string timeline;      // --timeline: human-readable span list
  double metrics_interval_s = 1.0;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --workload W     idle|web|stream|bonnie|build|memhog|trace (default idle)\n"
      "  --replay FILE    I/O trace to replay (with --workload trace)\n"
      "  --scheme S       tpm | freeze | shared | ondemand | delta (default tpm)\n"
      "  --disk-mib N     VBD size in MiB                  (default 39070)\n"
      "  --mem-mib N      guest memory in MiB              (default 512)\n"
      "  --fullness F     fraction of the disk populated   (default 1.0)\n"
      "  --rate-limit M   migration shaping, MiB/s; 0=off  (default 0)\n"
      "  --warmup S       seconds before migrating         (default 60)\n"
      "  --post S         seconds observed afterwards      (default 30)\n"
      "  --dwell S        seconds at dest before IM back   (default 600)\n"
      "  --roundtrip      migrate out, dwell, migrate back incrementally\n"
      "  --sparse         skip never-written blocks (guest-assisted, §VII)\n"
      "  --flat-bitmap    use the flat bitmap instead of layered\n"
      "  --seed N         RNG seed                         (default 42)\n"
      "  --json           print the report as JSON instead of text\n"
      "  --progress       print migration phase transitions\n"
      "  --verbose        narrate migration phases\n"
      "  --sim-trace      narrate scheduler events (schedule/cancel/fire)\n"
      "  --trace FILE     write a Chrome trace-event JSON (load in Perfetto)\n"
      "  --metrics FILE   write sampled metrics as t_seconds,metric,value CSV\n"
      "  --metrics-interval S  metrics sampling cadence in sim-seconds (default 1)\n"
      "  --timeline FILE  write a human-readable span timeline\n",
      argv0);
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--workload") {
      o.workload = need("--workload");
    } else if (a == "--replay") {
      o.trace_file = need("--replay");
    } else if (a == "--trace") {
      o.chrome_trace = need("--trace");
    } else if (a == "--metrics") {
      o.metrics_csv = need("--metrics");
    } else if (a == "--metrics-interval") {
      o.metrics_interval_s = std::strtod(need("--metrics-interval"), nullptr);
      if (!(o.metrics_interval_s > 0.0)) {
        std::fprintf(stderr, "error: --metrics-interval must be > 0\n");
        return false;
      }
    } else if (a == "--timeline") {
      o.timeline = need("--timeline");
    } else if (a == "--scheme") {
      o.scheme = need("--scheme");
    } else if (a == "--disk-mib") {
      o.disk_mib = std::strtoull(need("--disk-mib"), nullptr, 10);
    } else if (a == "--mem-mib") {
      o.mem_mib = std::strtoull(need("--mem-mib"), nullptr, 10);
    } else if (a == "--fullness") {
      o.fullness = std::strtod(need("--fullness"), nullptr);
    } else if (a == "--rate-limit") {
      o.rate_limit = std::strtod(need("--rate-limit"), nullptr);
    } else if (a == "--warmup") {
      o.warmup_s = std::strtod(need("--warmup"), nullptr);
    } else if (a == "--post") {
      o.post_s = std::strtod(need("--post"), nullptr);
    } else if (a == "--dwell") {
      o.dwell_s = std::strtod(need("--dwell"), nullptr);
    } else if (a == "--seed") {
      o.seed = std::strtoull(need("--seed"), nullptr, 10);
    } else if (a == "--roundtrip") {
      o.roundtrip = true;
    } else if (a == "--sparse") {
      o.sparse = true;
    } else if (a == "--flat-bitmap") {
      o.flat_bitmap = true;
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--progress") {
      o.progress = true;
    } else if (a == "--verbose") {
      o.verbose = true;
    } else if (a == "--sim-trace") {
      o.sim_trace = true;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

trace::IoTrace g_trace;  // must outlive the replay workload

std::unique_ptr<workload::Workload> make_workload(const Options& o,
                                                  sim::Simulator& sim,
                                                  vm::Domain& vm) {
  if (o.workload == "idle") return nullptr;
  if (o.workload == "memhog") {
    return std::make_unique<workload::MemoryHogWorkload>(sim, vm, o.seed);
  }
  if (o.workload == "trace") {
    std::ifstream in{o.trace_file};
    if (!in) {
      std::fprintf(stderr, "error: cannot open trace '%s'\n",
                   o.trace_file.c_str());
      std::exit(2);
    }
    g_trace = trace::IoTrace::load(in);
    workload::TraceReplayParams p;
    p.loop = true;
    return std::make_unique<workload::TraceReplayWorkload>(sim, vm, g_trace,
                                                           o.seed, p);
  }
  if (o.workload == "web") {
    return std::make_unique<workload::WebServerWorkload>(sim, vm, o.seed);
  }
  if (o.workload == "stream") {
    return std::make_unique<workload::StreamingWorkload>(sim, vm, o.seed);
  }
  if (o.workload == "bonnie") {
    return std::make_unique<workload::DiabolicalWorkload>(sim, vm, o.seed);
  }
  if (o.workload == "build") {
    return std::make_unique<workload::KernelBuildWorkload>(sim, vm, o.seed);
  }
  std::fprintf(stderr, "error: unknown workload '%s'\n", o.workload.c_str());
  std::exit(2);
}

int run_baseline(const Options& o, scenario::Testbed& tb,
                 workload::Workload* wl, core::MigrationConfig cfg) {
  auto& sim = tb.sim();
  if (wl != nullptr) wl->start();
  sim.run_for(sim::Duration::from_seconds(o.warmup_s));
  baseline::BaselineReport rep;
  sim.spawn(
      [](sim::Simulator& s, scenario::Testbed& tb, core::MigrationConfig cfg,
         const std::string scheme, baseline::BaselineReport& out)
          -> sim::Task<void> {
        if (scheme == "freeze") {
          baseline::FreezeAndCopyMigration m{s, cfg, tb.vm(), tb.source(),
                                             tb.dest()};
          out = co_await m.run();
        } else if (scheme == "shared") {
          baseline::SharedStorageMigration m{s, cfg, tb.vm(), tb.source(),
                                             tb.dest()};
          out = co_await m.run();
        } else if (scheme == "ondemand") {
          baseline::OnDemandMigration m{s, cfg, tb.vm(), tb.source(),
                                        tb.dest()};
          out = co_await m.run(sim::Duration::seconds(120));
        } else {
          baseline::DeltaForwardMigration m{s, cfg, tb.vm(), tb.source(),
                                            tb.dest()};
          out = co_await m.run();
        }
      }(sim, tb, cfg, o.scheme, rep),
      "baseline");
  sim.run_for(sim::Duration::from_seconds(36000));
  if (wl != nullptr) {
    wl->request_stop();
    sim.run_for(sim::Duration::from_seconds(600));
  }
  std::printf("%s\n", rep.str().c_str());
  return rep.base.disk_consistent || o.scheme == "shared" ? 0 : 1;
}

/// Write whichever obs outputs were requested; returns false on I/O error.
bool dump_obs(const Options& o, const obs::Registry* registry,
              const obs::Tracer* tracer) {
  const auto open = [](const std::string& path, std::ofstream& out) {
    out.open(path);
    if (!out) std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
    return static_cast<bool>(out);
  };
  if (!o.chrome_trace.empty()) {
    std::ofstream out;
    if (!open(o.chrome_trace, out)) return false;
    obs::write_chrome_trace(out, *tracer);
  }
  if (!o.timeline.empty()) {
    std::ofstream out;
    if (!open(o.timeline, out)) return false;
    obs::write_timeline(out, *tracer);
  }
  if (!o.metrics_csv.empty()) {
    std::ofstream out;
    if (!open(o.metrics_csv, out)) return false;
    out << core::to_csv(*registry);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) {
    usage(argv[0]);
    return 2;
  }
  if (o.verbose) sim::Log::set_level(sim::LogLevel::kInfo);

  sim::Simulator sim;
  sim.set_debug_trace(o.sim_trace);
  scenario::TestbedConfig bed;
  bed.vbd_mib = o.disk_mib;
  bed.guest_mem_mib = o.mem_mib;
  bed.seed = o.seed;
  scenario::Testbed tb{sim, bed};
  const auto blocks = tb.source().disk().geometry().block_count;
  const auto used =
      static_cast<storage::BlockId>(static_cast<double>(blocks) * o.fullness);
  for (storage::BlockId b = 0; b < used; ++b) {
    tb.source().disk().poke_token(b, 0xC11C000000000000ull + b);
  }

  auto cfg = tb.paper_migration_config();
  cfg.rate_limit_mibps = o.rate_limit;
  cfg.skip_unused_blocks = o.sparse;
  if (o.flat_bitmap) cfg.bitmap_kind = core::BitmapKind::kFlat;

  // Observability is opt-in: without any of --trace/--metrics/--timeline the
  // engine's obs pointers stay null and the hot paths pay a single branch.
  std::unique_ptr<obs::Registry> registry;
  std::unique_ptr<obs::Tracer> tracer;
  if (!o.chrome_trace.empty() || !o.metrics_csv.empty() ||
      !o.timeline.empty()) {
    registry = std::make_unique<obs::Registry>(
        sim, sim::Duration::from_seconds(o.metrics_interval_s));
    tracer = std::make_unique<obs::Tracer>(sim);
    tb.attach_obs(registry.get());
    registry->start_sampling();
    cfg.obs_registry = registry.get();
    cfg.obs_tracer = tracer.get();
  }

  const auto wl = make_workload(o, sim, tb.vm());
  if (o.progress) {
    tb.manager().set_progress_listener(
        [&sim](core::TpmMigration::Phase p, double f) {
          std::fprintf(stderr, "[%10.3fs] %-14s %5.1f%%\n",
                       sim.now().to_seconds(),
                       core::TpmMigration::phase_name(p), f * 100.0);
        });
  }

  int rc;
  if (o.scheme != "tpm") {
    rc = run_baseline(o, tb, wl.get(), cfg);
  } else if (o.roundtrip) {
    const auto [out, back] = tb.run_tpm_then_im(
        wl.get(), sim::Duration::from_seconds(o.warmup_s),
        sim::Duration::from_seconds(o.dwell_s),
        sim::Duration::from_seconds(o.post_s), cfg);
    std::printf("== outbound ==\n%s\n\n== incremental return ==\n%s\n",
                out.str().c_str(), back.str().c_str());
    rc = out.disk_consistent && back.disk_consistent ? 0 : 1;
  } else {
    const auto rep =
        tb.run_tpm(wl.get(), sim::Duration::from_seconds(o.warmup_s),
                   sim::Duration::from_seconds(o.post_s), cfg);
    if (o.json) {
      std::printf("%s\n", core::to_json(rep).c_str());
    } else {
      std::printf("%s\n", rep.str().c_str());
      if (wl != nullptr) {
        const auto d = core::measure_disruption(
            wl->throughput().series(), sim::TimePoint::origin() + 10_s,
            rep.started, rep.started, rep.synchronized, 0.8);
        std::printf("disruption: %.1f s of %.1f s below 80%% of baseline "
                    "(worst sample %.0f%%)\n",
                    d.disrupted_time.to_seconds(), d.window.to_seconds(),
                    d.worst_ratio * 100.0);
      }
    }
    rc = rep.disk_consistent && rep.memory_consistent ? 0 : 1;
  }

  if (!dump_obs(o, registry.get(), tracer.get())) return 2;
  return rc;
}
