// vmig_sim — command-line front end for the migration simulator.
//
// Runs one migration experiment on the calibrated two-host testbed and
// prints the report. Examples:
//
//   vmig_sim                                 # idle guest, paper testbed
//   vmig_sim --workload web --disk-mib 8192
//   vmig_sim --workload bonnie --rate-limit 30
//   vmig_sim --scheme delta --workload web   # run a baseline instead
//   vmig_sim --roundtrip --dwell 600         # TPM out + incremental back
//   vmig_sim --sparse --fullness 0.25        # §VII free-block map
//   vmig_sim --verbose                       # narrate migration phases
//   vmig_sim --trace out.json                # Chrome/Perfetto trace export
//   vmig_sim --metrics out.csv               # sampled metrics time series
//   vmig_sim --cluster --cluster-vms 8       # orchestrated host evacuation
//   vmig_sim --fault 'outage@65s+2s' --warmup 60   # fault mid-migration

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <fstream>
#include <stdexcept>
#include <string>

#include "baselines/delta_forward.hpp"
#include "cluster/orchestrator.hpp"
#include "baselines/freeze_and_copy.hpp"
#include "baselines/on_demand.hpp"
#include "baselines/shared_storage.hpp"
#include "core/disruption.hpp"
#include "core/report_io.hpp"
#include "fault/fault_spec.hpp"
#include "fault/injector.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/rollup.hpp"
#include "obs/tracer.hpp"
#include "scenario/cluster_testbed.hpp"
#include "scenario/testbed.hpp"
#include "simcore/log.hpp"
#include "workloads/diabolical.hpp"
#include "workloads/kernel_build.hpp"
#include "workloads/memory_hog.hpp"
#include "workloads/trace_replay.hpp"
#include "workloads/streaming.hpp"
#include "workloads/web_server.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

struct Options {
  std::string workload = "idle";  // idle|web|stream|bonnie|build|memhog|trace
  std::string trace_file;
  std::string scheme = "tpm";     // tpm|freeze|shared|ondemand|delta
  std::uint64_t disk_mib = 39070;
  std::uint64_t mem_mib = 512;
  double fullness = 1.0;
  double rate_limit = 0.0;
  double warmup_s = 60.0;
  double post_s = 30.0;
  double dwell_s = 600.0;
  std::uint64_t seed = 42;
  bool roundtrip = false;
  bool sparse = false;
  std::string bitmap = "layered";  // flat|layered|3level
  bool verbose = false;
  bool json = false;
  bool progress = false;
  bool sim_trace = false;  // --sim-trace: narrate scheduler events to stderr
  std::string chrome_trace;  // --trace: Chrome trace-event JSON output
  std::string metrics_csv;   // --metrics: sampled metrics, long-format CSV
  std::string timeline;      // --timeline: human-readable span list
  std::string flight_record; // --flight-record: JSONL event log (vmig_analyze)
  double metrics_interval_s = 1.0;
  // --flight-budget: byte-budgeted event sampling for the flight recorder
  // (aggregates/summaries stay exact; 0 = unbudgeted).
  std::uint64_t flight_budget = 0;
  // --fleet-metrics: fleet rollup CSV (cluster mode; docs/OBSERVABILITY.md).
  std::string fleet_metrics;
  // --cluster: orchestrated evacuation on the N-host testbed.
  bool cluster = false;
  bool fast_forward = false;  // --fast-forward: settle idle dirty-rate models
  int cluster_hosts = 3;
  int cluster_vms = 4;
  std::string cluster_policy = "fifo";  // fifo|smallest-dirty|workload-cycle
  double cluster_outage_s = 0.0;  // host0->host1 outage length (starts at 1s)
  // --fault: fault windows injected on the migration path (docs/FAULTS.md).
  std::string fault_spec;
  std::uint64_t fault_seed = 1;
  // --profile: wall-clock self-profile of the simulator (docs/OBSERVABILITY.md).
  bool profile = false;
  std::string profile_out;  // collapsed-stack output (implies --profile)
  // Set when any --cluster-* tuning flag appears, so validate() can reject
  // combinations that would otherwise be silently ignored.
  bool cluster_flags_used = false;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --workload W     idle|web|stream|bonnie|build|memhog|trace (default idle)\n"
      "  --replay FILE    I/O trace to replay (with --workload trace)\n"
      "  --scheme S       tpm | freeze | shared | ondemand | delta (default tpm)\n"
      "  --disk-mib N     VBD size in MiB                  (default 39070)\n"
      "  --mem-mib N      guest memory in MiB              (default 512)\n"
      "  --fullness F     fraction of the disk populated   (default 1.0)\n"
      "  --rate-limit M   migration shaping, MiB/s; 0=off  (default 0)\n"
      "  --warmup S       seconds before migrating         (default 60)\n"
      "  --post S         seconds observed afterwards      (default 30)\n"
      "  --dwell S        seconds at dest before IM back   (default 600)\n"
      "  --roundtrip      migrate out, dwell, migrate back incrementally\n"
      "  --sparse         skip never-written blocks (guest-assisted, §VII)\n"
      "  --bitmap K       flat | layered | 3level          (default layered)\n"
      "  --flat-bitmap    alias for --bitmap flat\n"
      "  --seed N         RNG seed                         (default 42)\n"
      "  --json           print the report as JSON instead of text\n"
      "  --progress       print migration phase transitions\n"
      "  --verbose        narrate migration phases\n"
      "  --sim-trace      narrate scheduler events (schedule/cancel/fire)\n"
      "  --trace FILE     write a Chrome trace-event JSON (load in Perfetto)\n"
      "  --metrics FILE   write sampled metrics as t_seconds,metric,value CSV\n"
      "  --metrics-interval S  metrics sampling cadence in sim-seconds (default 1)\n"
      "  --timeline FILE  write a human-readable span timeline\n"
      "  --flight-record FILE  write the migration flight record as JSONL\n"
      "                   (post-mortem input for vmig_analyze)\n"
      "  --flight-budget BYTES  cap the flight record's event section by\n"
      "                   deterministic per-migration sampling (terminal\n"
      "                   records and exact aggregates always kept)\n"
      "  --fleet-metrics FILE  write the fleet rollup (racks, hot hosts,\n"
      "                   shard occupancy) as CSV; view with vmig_top and\n"
      "                   reconcile with vmig_analyze --fleet (cluster mode)\n"
      "  --cluster        evacuate host0 of an N-host cluster through the\n"
      "                   migration orchestrator (disk/mem sizes are per VM;\n"
      "                   the default VBD shrinks to 1024 MiB in this mode)\n"
      "  --cluster-hosts N    cluster size                (default 3)\n"
      "  --cluster-vms N      guests to evacuate off host0 (default 4)\n"
      "  --cluster-policy P   fifo | smallest-dirty | workload-cycle\n"
      "  --cluster-outage S   fail host0->host1 for S seconds at t=1s\n"
      "  --fast-forward       fold idle dirty-rate model ticks into bulk\n"
      "                       settles (cluster mode; see docs/SCALE.md)\n"
      "  --fault SPEC     inject faults on the migration path; SPEC is\n"
      "                   ';'-separated clauses (see docs/FAULTS.md):\n"
      "                     outage@<at>+<dur>       degrade@<at>+<dur>:<f>\n"
      "                     latency@<at>+<dur>:<d>  loss@<at>+<dur>:<p>\n"
      "                   e.g. 'outage@65s+2s;loss@70s+30s:0.05'\n"
      "  --fault-seed N   seed for the injected-loss RNG     (default 1)\n"
      "  --profile        print a wall-clock self-profile of the simulator\n"
      "                   (per-category table; simulated results unchanged)\n"
      "  --profile-out F  also write a collapsed-stack profile to F\n"
      "                   (speedscope/flamegraph format; implies --profile)\n",
      argv0);
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--workload") {
      o.workload = need("--workload");
    } else if (a == "--replay") {
      o.trace_file = need("--replay");
    } else if (a == "--trace") {
      o.chrome_trace = need("--trace");
    } else if (a == "--metrics") {
      o.metrics_csv = need("--metrics");
    } else if (a == "--metrics-interval") {
      o.metrics_interval_s = std::strtod(need("--metrics-interval"), nullptr);
    } else if (a == "--timeline") {
      o.timeline = need("--timeline");
    } else if (a == "--flight-record") {
      o.flight_record = need("--flight-record");
    } else if (a == "--flight-budget") {
      o.flight_budget = std::strtoull(need("--flight-budget"), nullptr, 10);
    } else if (a == "--fleet-metrics") {
      o.fleet_metrics = need("--fleet-metrics");
      o.cluster_flags_used = true;
    } else if (a == "--scheme") {
      o.scheme = need("--scheme");
    } else if (a == "--disk-mib") {
      o.disk_mib = std::strtoull(need("--disk-mib"), nullptr, 10);
    } else if (a == "--mem-mib") {
      o.mem_mib = std::strtoull(need("--mem-mib"), nullptr, 10);
    } else if (a == "--fullness") {
      o.fullness = std::strtod(need("--fullness"), nullptr);
    } else if (a == "--rate-limit") {
      o.rate_limit = std::strtod(need("--rate-limit"), nullptr);
    } else if (a == "--warmup") {
      o.warmup_s = std::strtod(need("--warmup"), nullptr);
    } else if (a == "--post") {
      o.post_s = std::strtod(need("--post"), nullptr);
    } else if (a == "--dwell") {
      o.dwell_s = std::strtod(need("--dwell"), nullptr);
    } else if (a == "--seed") {
      o.seed = std::strtoull(need("--seed"), nullptr, 10);
    } else if (a == "--cluster") {
      o.cluster = true;
    } else if (a == "--fast-forward") {
      o.fast_forward = true;
      o.cluster_flags_used = true;
    } else if (a == "--cluster-hosts") {
      o.cluster_hosts = static_cast<int>(std::strtol(need("--cluster-hosts"), nullptr, 10));
      o.cluster_flags_used = true;
    } else if (a == "--cluster-vms") {
      o.cluster_vms = static_cast<int>(std::strtol(need("--cluster-vms"), nullptr, 10));
      o.cluster_flags_used = true;
    } else if (a == "--cluster-policy") {
      o.cluster_policy = need("--cluster-policy");
      o.cluster_flags_used = true;
    } else if (a == "--cluster-outage") {
      o.cluster_outage_s = std::strtod(need("--cluster-outage"), nullptr);
      o.cluster_flags_used = true;
    } else if (a == "--profile") {
      o.profile = true;
    } else if (a == "--profile-out") {
      o.profile_out = need("--profile-out");
      o.profile = true;
    } else if (a == "--fault") {
      o.fault_spec = need("--fault");
    } else if (a == "--fault-seed") {
      o.fault_seed = std::strtoull(need("--fault-seed"), nullptr, 10);
    } else if (a == "--roundtrip") {
      o.roundtrip = true;
    } else if (a == "--sparse") {
      o.sparse = true;
    } else if (a == "--bitmap") {
      o.bitmap = need("--bitmap");
    } else if (a == "--flat-bitmap") {
      o.bitmap = "flat";
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--progress") {
      o.progress = true;
    } else if (a == "--verbose") {
      o.verbose = true;
    } else if (a == "--sim-trace") {
      o.sim_trace = true;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

core::BitmapKind parse_bitmap(const std::string& k) {
  if (k == "flat") return core::BitmapKind::kFlat;
  if (k == "3level") return core::BitmapKind::kThreeLevel;
  return core::BitmapKind::kLayered;
}

/// Every cross-flag rule in one place, run before any simulation work.
/// Exits 2 on violation: bad combinations and unwritable output paths fail
/// fast instead of being discovered (or silently ignored) after the run.
void validate_or_die(const Options& o) {
  const auto die = [](const std::string& msg) {
    std::fprintf(stderr, "error: %s\n", msg.c_str());
    std::exit(2);
  };
  if (!(o.metrics_interval_s > 0.0)) die("--metrics-interval must be > 0");
  if (o.flight_budget > 0 && o.flight_record.empty()) {
    die("--flight-budget requires --flight-record");
  }
  if (o.bitmap != "flat" && o.bitmap != "layered" && o.bitmap != "3level") {
    die("--bitmap must be flat, layered, or 3level");
  }
  if (o.workload == "trace" && o.trace_file.empty()) {
    die("--workload trace requires --replay FILE");
  }
  if (!o.trace_file.empty() && o.workload != "trace") {
    die("--replay only applies with --workload trace");
  }
  if (o.cluster && o.roundtrip) die("--cluster and --roundtrip conflict");
  if (o.cluster && o.scheme != "tpm") {
    die("--scheme only applies to the two-host testbed, not --cluster");
  }
  if (o.cluster_flags_used && !o.cluster) {
    die("--cluster-* and --fast-forward options require --cluster");
  }
  if (o.cluster && o.cluster_hosts < 2) die("--cluster-hosts must be >= 2");
  if (o.cluster && o.cluster_vms < 1) die("--cluster-vms must be >= 1");
  if (o.fullness < 0.0 || o.fullness > 1.0) {
    die("--fullness must be in [0, 1]");
  }
  // Probe every requested output path now (append mode: existing content is
  // left alone). An unwritable directory used to surface only after the
  // whole simulation had run.
  const auto check_writable = [&](const std::string& path, const char* flag) {
    if (path.empty()) return;
    std::ofstream probe{path, std::ios::app};
    if (!probe) die(std::string{flag} + ": cannot write '" + path + "'");
  };
  check_writable(o.chrome_trace, "--trace");
  check_writable(o.metrics_csv, "--metrics");
  check_writable(o.timeline, "--timeline");
  check_writable(o.flight_record, "--flight-record");
  check_writable(o.fleet_metrics, "--fleet-metrics");
  check_writable(o.profile_out, "--profile-out");
}

trace::IoTrace g_trace;  // must outlive the replay workload

/// Parse --fault (exits with usage-style error code 2 on a malformed spec).
fault::FaultSpec parse_fault_or_die(const Options& o) {
  if (o.fault_spec.empty()) return {};
  try {
    return fault::FaultSpec::parse(o.fault_spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: bad --fault spec: %s\n", e.what());
    std::exit(2);
  }
}

std::unique_ptr<workload::Workload> make_workload(const Options& o,
                                                  sim::Simulator& sim,
                                                  vm::Domain& vm) {
  if (o.workload == "idle") return nullptr;
  if (o.workload == "memhog") {
    return std::make_unique<workload::MemoryHogWorkload>(sim, vm, o.seed);
  }
  if (o.workload == "trace") {
    std::ifstream in{o.trace_file};
    if (!in) {
      std::fprintf(stderr, "error: cannot open trace '%s'\n",
                   o.trace_file.c_str());
      std::exit(2);
    }
    g_trace = trace::IoTrace::load(in);
    workload::TraceReplayParams p;
    p.loop = true;
    return std::make_unique<workload::TraceReplayWorkload>(sim, vm, g_trace,
                                                           o.seed, p);
  }
  if (o.workload == "web") {
    return std::make_unique<workload::WebServerWorkload>(sim, vm, o.seed);
  }
  if (o.workload == "stream") {
    return std::make_unique<workload::StreamingWorkload>(sim, vm, o.seed);
  }
  if (o.workload == "bonnie") {
    return std::make_unique<workload::DiabolicalWorkload>(sim, vm, o.seed);
  }
  if (o.workload == "build") {
    return std::make_unique<workload::KernelBuildWorkload>(sim, vm, o.seed);
  }
  std::fprintf(stderr, "error: unknown workload '%s'\n", o.workload.c_str());
  std::exit(2);
}

int run_baseline(const Options& o, scenario::Testbed& tb,
                 workload::Workload* wl, core::MigrationConfig cfg) {
  auto& sim = tb.sim();
  if (wl != nullptr) wl->start();
  sim.run_for(sim::Duration::from_seconds(o.warmup_s));
  baseline::BaselineReport rep;
  sim.spawn(
      [](sim::Simulator& s, scenario::Testbed& tb, core::MigrationConfig cfg,
         const std::string scheme, baseline::BaselineReport& out)
          -> sim::Task<void> {
        if (scheme == "freeze") {
          baseline::FreezeAndCopyMigration m{s, cfg, tb.vm(), tb.source(),
                                             tb.dest()};
          out = co_await m.run();
        } else if (scheme == "shared") {
          baseline::SharedStorageMigration m{s, cfg, tb.vm(), tb.source(),
                                             tb.dest()};
          out = co_await m.run();
        } else if (scheme == "ondemand") {
          baseline::OnDemandMigration m{s, cfg, tb.vm(), tb.source(),
                                        tb.dest()};
          out = co_await m.run(sim::Duration::seconds(120));
        } else {
          baseline::DeltaForwardMigration m{s, cfg, tb.vm(), tb.source(),
                                            tb.dest()};
          out = co_await m.run();
        }
      }(sim, tb, cfg, o.scheme, rep),
      "baseline");
  sim.run_for(sim::Duration::from_seconds(36000));
  if (wl != nullptr) {
    wl->request_stop();
    sim.run_for(sim::Duration::from_seconds(600));
  }
  std::printf("%s\n", rep.str().c_str());
  return rep.base.disk_consistent || o.scheme == "shared" ? 0 : 1;
}

cluster::SchedulePolicyKind parse_policy(const std::string& name) {
  if (name == "fifo") return cluster::SchedulePolicyKind::kFifo;
  if (name == "smallest-dirty") {
    return cluster::SchedulePolicyKind::kSmallestDirtyFirst;
  }
  if (name == "workload-cycle") {
    return cluster::SchedulePolicyKind::kWorkloadCycleAware;
  }
  std::fprintf(stderr, "error: unknown cluster policy '%s'\n", name.c_str());
  std::exit(2);
}

bool dump_obs(const Options& o, const obs::Registry* registry,
              const obs::Tracer* tracer,
              const obs::FlightRecorder* recorder);

int run_cluster(const Options& o) {
  sim::Simulator sim;
  sim.set_fast_forward(o.fast_forward);
  scenario::ClusterTestbedConfig bed;
  bed.hosts = o.cluster_hosts;
  // The two-host default (the paper's 40 GB device) is outsized for a
  // many-VM evacuation; shrink unless the user chose a size explicitly.
  bed.vbd_mib = o.disk_mib == 39070 ? 1024 : o.disk_mib;
  bed.guest_mem_mib = o.mem_mib == 512 ? 128 : o.mem_mib;
  scenario::ClusterTestbed tb{sim, bed};
  for (int i = 0; i < o.cluster_vms; ++i) {
    tb.add_vm("vm" + std::to_string(i), 0);
  }
  tb.prefill_disks();

  std::unique_ptr<obs::Registry> registry;
  std::unique_ptr<obs::Tracer> tracer;
  if (!o.chrome_trace.empty() || !o.metrics_csv.empty() ||
      !o.timeline.empty()) {
    registry = std::make_unique<obs::Registry>(
        sim, sim::Duration::from_seconds(o.metrics_interval_s));
    tracer = std::make_unique<obs::Tracer>(sim);
    tb.attach_obs(registry.get());
    registry->start_sampling();
  }
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (!o.flight_record.empty()) {
    recorder = std::make_unique<obs::FlightRecorder>();
    if (o.flight_budget > 0) recorder->set_byte_budget(o.flight_budget);
  }
  std::unique_ptr<obs::Rollup> rollup;
  if (!o.fleet_metrics.empty()) {
    obs::RollupConfig rcfg;
    rcfg.hosts = static_cast<std::size_t>(o.cluster_hosts);
    rcfg.sample_interval = sim::Duration::from_seconds(o.metrics_interval_s);
    rollup = std::make_unique<obs::Rollup>(sim, rcfg);
    tb.attach_rollup(rollup.get());
    rollup->start_sampling();
  }

  auto cfg = tb.paper_migration_config();
  cfg.rate_limit_mibps = o.rate_limit;
  cfg.bitmap_kind = parse_bitmap(o.bitmap);

  cluster::OrchestratorConfig ocfg;
  ocfg.caps = {.per_source = 2, .per_dest = 2, .per_link = 1, .total = 8};
  ocfg.policy = parse_policy(o.cluster_policy);
  ocfg.registry = registry.get();
  ocfg.tracer = tracer.get();
  ocfg.recorder = recorder.get();
  ocfg.rollup = rollup.get();
  cluster::Orchestrator orch{sim, tb.manager(), ocfg};
  orch.submit_evacuation(tb.host(0), tb.hosts_except(0), cfg);
  const fault::FaultSpec fspec = parse_fault_or_die(o);
  std::unique_ptr<fault::FaultInjector> injector;
  if (!fspec.empty()) {
    injector = std::make_unique<fault::FaultInjector>(sim, fspec, o.fault_seed);
    injector->attach_obs(registry.get(), tracer.get());
    // The evacuation's busiest path: host0 to its first evacuation target.
    injector->arm_path(tb.host(0).link_to(tb.host(1)),
                       tb.host(1).link_to(tb.host(0)), "host0-host1");
  }
  if (o.cluster_outage_s > 0.0) {
    tb.host(0).link_to(tb.host(1)).fail_at(
        sim::TimePoint::origin() + 1_s,
        sim::Duration::from_seconds(o.cluster_outage_s));
  }
  orch.drain();

  bool ok = orch.all_terminal();
  for (std::size_t i = 0; i < orch.job_count(); ++i) {
    const auto& j = orch.job(static_cast<cluster::JobId>(i));
    ok = ok && j.outcome.ok();
    std::printf("job %zu: %-8s %s->%s  %-15s attempts=%d total=%.3fs\n", i,
                j.request.domain->name().c_str(), j.request.from->name().c_str(),
                j.request.to->name().c_str(), core::to_string(j.outcome.status),
                j.attempts, j.outcome.report.total_time().to_seconds());
  }
  std::printf("summary: %llu completed, %llu failed, %llu retries, "
              "peak %d concurrent, done at %.3fs\n",
              static_cast<unsigned long long>(orch.jobs_completed()),
              static_cast<unsigned long long>(orch.jobs_failed()),
              static_cast<unsigned long long>(orch.retries()),
              orch.peak_running(), sim.now().to_seconds());

  if (rollup != nullptr) {
    // One more snapshot after the drain so the export ends on the terminal
    // fleet state (the in-run sampler parked when the calendar emptied).
    rollup->sample_now();
    std::ofstream out{o.fleet_metrics};
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   o.fleet_metrics.c_str());
      return 2;
    }
    rollup->write_csv(out);
  }
  if (!dump_obs(o, registry.get(), tracer.get(), recorder.get())) return 2;
  return ok ? 0 : 1;
}

/// Write whichever obs outputs were requested; returns false on I/O error.
bool dump_obs(const Options& o, const obs::Registry* registry,
              const obs::Tracer* tracer,
              const obs::FlightRecorder* recorder) {
  const auto open = [](const std::string& path, std::ofstream& out) {
    out.open(path);
    if (!out) std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
    return static_cast<bool>(out);
  };
  if (!o.chrome_trace.empty()) {
    std::ofstream out;
    if (!open(o.chrome_trace, out)) return false;
    obs::write_chrome_trace(out, *tracer);
  }
  if (!o.timeline.empty()) {
    std::ofstream out;
    if (!open(o.timeline, out)) return false;
    obs::write_timeline(out, *tracer);
  }
  if (!o.metrics_csv.empty()) {
    std::ofstream out;
    if (!open(o.metrics_csv, out)) return false;
    out << core::to_csv(*registry);
  }
  if (!o.flight_record.empty()) {
    std::ofstream out;
    if (!open(o.flight_record, out)) return false;
    obs::write_flight_record(out, *recorder);
  }
  return true;
}

/// Print the self-profile table and write the collapsed-stack file.
/// A no-op without --profile; returns false on I/O error.
bool dump_profile(const Options& o, const obs::Profiler* prof) {
  if (prof == nullptr) return true;
  std::printf("\n-- self-profile (wall clock, simulated results unaffected) --\n%s",
              prof->table().c_str());
  if (!o.profile_out.empty()) {
    std::ofstream out{o.profile_out};
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", o.profile_out.c_str());
      return false;
    }
    out << prof->collapsed();
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) {
    usage(argv[0]);
    return 2;
  }
  validate_or_die(o);
  if (o.verbose) sim::Log::set_level(sim::LogLevel::kInfo);

  // The profiler observes wall time only; simulated behavior and every
  // simulated artifact are byte-identical with or without it (pinned by
  // tests/profiler_test.cpp).
  std::unique_ptr<obs::Profiler> profiler;
  if (o.profile) {
    profiler = std::make_unique<obs::Profiler>();
    profiler->activate();
  }

  if (o.cluster) {
    const int rc = run_cluster(o);
    if (!dump_profile(o, profiler.get())) return 2;
    return rc;
  }

  sim::Simulator sim;
  sim.set_debug_trace(o.sim_trace);
  scenario::TestbedConfig bed;
  bed.vbd_mib = o.disk_mib;
  bed.guest_mem_mib = o.mem_mib;
  bed.seed = o.seed;
  scenario::Testbed tb{sim, bed};
  const auto blocks = tb.source().disk().geometry().block_count;
  const auto used =
      static_cast<storage::BlockId>(static_cast<double>(blocks) * o.fullness);
  for (storage::BlockId b = 0; b < used; ++b) {
    tb.source().disk().poke_token(b, 0xC11C000000000000ull + b);
  }

  auto cfg = tb.paper_migration_config();
  cfg.rate_limit_mibps = o.rate_limit;
  cfg.skip_unused_blocks = o.sparse;
  cfg.bitmap_kind = parse_bitmap(o.bitmap);

  // Observability is opt-in: without any of --trace/--metrics/--timeline the
  // engine's obs pointers stay null and the hot paths pay a single branch.
  std::unique_ptr<obs::Registry> registry;
  std::unique_ptr<obs::Tracer> tracer;
  if (!o.chrome_trace.empty() || !o.metrics_csv.empty() ||
      !o.timeline.empty()) {
    registry = std::make_unique<obs::Registry>(
        sim, sim::Duration::from_seconds(o.metrics_interval_s));
    tracer = std::make_unique<obs::Tracer>(sim);
    tb.attach_obs(registry.get());
    registry->start_sampling();
    cfg.obs_registry = registry.get();
    cfg.obs_tracer = tracer.get();
  }
  // The flight recorder is independent of the sampled-metrics/trace sinks:
  // it keeps exact aggregates of its own and costs nothing when off.
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (!o.flight_record.empty()) {
    recorder = std::make_unique<obs::FlightRecorder>();
    if (o.flight_budget > 0) recorder->set_byte_budget(o.flight_budget);
    cfg.obs_recorder = recorder.get();
  }

  const fault::FaultSpec fspec = parse_fault_or_die(o);
  std::unique_ptr<fault::FaultInjector> injector;
  if (!fspec.empty()) {
    injector = std::make_unique<fault::FaultInjector>(sim, fspec, o.fault_seed);
    injector->attach_obs(registry.get(), tracer.get());
    injector->arm_path(tb.source().link_to(tb.dest()),
                       tb.dest().link_to(tb.source()), "src-dst");
  }

  const auto wl = make_workload(o, sim, tb.vm());
  if (o.progress) {
    tb.manager().set_progress_listener(
        [&sim](core::TpmMigration::Phase p, double f) {
          std::fprintf(stderr, "[%10.3fs] %-14s %5.1f%%\n",
                       sim.now().to_seconds(),
                       core::TpmMigration::phase_name(p), f * 100.0);
        });
  }

  int rc;
  if (o.scheme != "tpm") {
    rc = run_baseline(o, tb, wl.get(), cfg);
  } else if (o.roundtrip) {
    const auto [out, back] = tb.run_tpm_then_im(
        wl.get(), sim::Duration::from_seconds(o.warmup_s),
        sim::Duration::from_seconds(o.dwell_s),
        sim::Duration::from_seconds(o.post_s), cfg);
    std::printf("== outbound ==\n%s\n\n== incremental return ==\n%s\n",
                out.str().c_str(), back.str().c_str());
    rc = out.disk_consistent && back.disk_consistent ? 0 : 1;
  } else {
    const auto rep =
        tb.run_tpm(wl.get(), sim::Duration::from_seconds(o.warmup_s),
                   sim::Duration::from_seconds(o.post_s), cfg);
    if (o.json) {
      std::printf("%s\n", core::to_json(rep).c_str());
    } else {
      std::printf("%s\n", rep.str().c_str());
      if (wl != nullptr) {
        const auto d = core::measure_disruption(
            wl->throughput().series(), sim::TimePoint::origin() + 10_s,
            rep.started, rep.started, rep.synchronized, 0.8);
        std::printf("disruption: %.1f s of %.1f s below 80%% of baseline "
                    "(worst sample %.0f%%)\n",
                    d.disrupted_time.to_seconds(), d.window.to_seconds(),
                    d.worst_ratio * 100.0);
      }
    }
    rc = rep.disk_consistent && rep.memory_consistent ? 0 : 1;
  }

  if (!dump_obs(o, registry.get(), tracer.get(), recorder.get())) return 2;
  if (!dump_profile(o, profiler.get())) return 2;
  return rc;
}
